#include "btmf/model/wire.h"

#include <cstddef>
#include <map>
#include <vector>

#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::model {

namespace {

[[noreturn]] void malformed(const std::string& why) {
  throw ConfigError("spec wire decode: " + why);
}

double to_double(std::string_view s, std::string_view what) {
  return util::parse_double(s, what);
}

bool to_bool(std::string_view s, std::string_view what) {
  if (s == "0") return false;
  if (s == "1") return true;
  malformed(std::string(what) + " must be 0 or 1, got '" + std::string(s) +
            "'");
}

long long to_count(std::string_view s, std::string_view what,
                   long long min_value) {
  const long long v = util::parse_int(s, what);
  if (v < min_value) {
    malformed(std::string(what) + " must be >= " + std::to_string(min_value));
  }
  return v;
}

std::vector<std::string> fields_of(std::string_view value,
                                   std::string_view what, std::size_t n) {
  const std::vector<std::string> fields = util::split(value, ',');
  if (fields.size() != n) {
    malformed(std::string(what) + " expects " + std::to_string(n) +
              " comma-separated fields, got " +
              std::to_string(fields.size()));
  }
  return fields;
}

std::vector<double> double_list(std::string_view value,
                                std::string_view what) {
  std::vector<double> out;
  if (value.empty()) return out;
  for (const std::string& field : util::split(value, ',')) {
    out.push_back(to_double(field, what));
  }
  return out;
}

/// Parses the fault fingerprint: a concatenation of "name(a,b,...)"
/// segments, in declaration order — exactly what fault_fingerprint in
/// spec.cpp emits.
sim::FaultPlan parse_faults(std::string_view value) {
  sim::FaultPlan plan;
  std::string_view rest = value;
  while (!rest.empty()) {
    const std::size_t open = rest.find('(');
    const std::size_t close = rest.find(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      malformed("faults segment '" + std::string(rest) +
                "' is not name(args)");
    }
    const std::string_view name = rest.substr(0, open);
    const std::string_view args = rest.substr(open + 1, close - open - 1);
    if (name == "tracker") {
      const auto f = fields_of(args, "faults tracker", 4);
      sim::TrackerOutageFault fault;
      fault.start = to_double(f[0], "tracker start");
      fault.duration = to_double(f[1], "tracker duration");
      fault.drop = to_bool(f[2], "tracker drop");
      fault.readmit_rate = to_double(f[3], "tracker readmit_rate");
      plan.tracker_outages.push_back(fault);
    } else if (name == "seed") {
      const auto f = fields_of(args, "faults seed", 2);
      sim::SeedFailureFault fault;
      fault.start = to_double(f[0], "seed start");
      fault.duration = to_double(f[1], "seed duration");
      plan.seed_failures.push_back(fault);
    } else if (name == "churn") {
      const auto f = fields_of(args, "faults churn", 4);
      sim::ChurnBurstFault fault;
      fault.time = to_double(f[0], "churn time");
      fault.kill_fraction = to_double(f[1], "churn kill_fraction");
      fault.progress_loss = to_double(f[2], "churn progress_loss");
      fault.backoff_rate = to_double(f[3], "churn backoff_rate");
      plan.churn_bursts.push_back(fault);
    } else if (name == "bw") {
      const auto f = fields_of(args, "faults bw", 3);
      sim::BandwidthFault fault;
      fault.start = to_double(f[0], "bw start");
      fault.duration = to_double(f[1], "bw duration");
      fault.scale = to_double(f[2], "bw scale");
      plan.bandwidth_faults.push_back(fault);
    } else {
      malformed("unknown fault kind '" + std::string(name) + "'");
    }
    rest.remove_prefix(close + 1);
  }
  return plan;
}

}  // namespace

std::string encode_spec(const ScenarioSpec& spec) {
  return spec.fingerprint();
}

ScenarioSpec decode_spec(std::string_view wire) {
  // Gather key=value tokens; duplicates and unknowns are structural errors.
  std::map<std::string, std::string> fields;
  for (const std::string& token : util::split(wire, ';')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      malformed("token '" + token + "' is not key=value");
    }
    if (!fields.emplace(token.substr(0, eq), token.substr(eq + 1)).second) {
      malformed("duplicate key '" + token.substr(0, eq) + "'");
    }
  }
  const auto take = [&fields](const char* key) {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      malformed("missing key '" + std::string(key) + "'");
    }
    std::string value = it->second;
    fields.erase(it);
    return value;
  };

  ScenarioSpec spec;
  spec.num_files =
      static_cast<unsigned>(to_count(take("k"), "k", 1));
  spec.correlation = to_double(take("p"), "p");
  spec.visit_rate = to_double(take("lambda0"), "lambda0");
  spec.fluid.mu = to_double(take("mu"), "mu");
  spec.fluid.eta = to_double(take("eta"), "eta");
  spec.fluid.gamma = to_double(take("gamma"), "gamma");
  spec.scheme = fluid::scheme_from_string(take("scheme"));
  spec.rho = to_double(take("rho"), "rho");
  spec.rho_per_class = double_list(take("rho_per_class"), "rho_per_class");

  {
    const auto f = fields_of(take("solver"), "solver", 6);
    spec.solver.residual_tol = to_double(f[0], "solver residual_tol");
    spec.solver.chunk_time = to_double(f[1], "solver chunk_time");
    spec.solver.chunk_growth = to_double(f[2], "solver chunk_growth");
    spec.solver.max_chunks =
        static_cast<std::size_t>(to_count(f[3], "solver max_chunks", 1));
    spec.solver.polish_with_newton = to_bool(f[4], "solver polish");
    spec.solver.clamp_nonnegative = to_bool(f[5], "solver clamp");
  }
  {
    const auto f = fields_of(take("ode"), "ode", 6);
    spec.solver.ode.rtol = to_double(f[0], "ode rtol");
    spec.solver.ode.atol = to_double(f[1], "ode atol");
    spec.solver.ode.initial_dt = to_double(f[2], "ode initial_dt");
    spec.solver.ode.max_dt = to_double(f[3], "ode max_dt");
    spec.solver.ode.max_steps =
        static_cast<std::size_t>(to_count(f[4], "ode max_steps", 1));
    spec.solver.ode.clamp_nonnegative = to_bool(f[5], "ode clamp");
  }
  spec.transient_samples =
      static_cast<std::size_t>(to_count(take("samples"), "samples", 2));
  spec.horizon = to_double(take("horizon"), "horizon");
  spec.warmup = to_double(take("warmup"), "warmup");
  spec.seed =
      static_cast<std::uint64_t>(to_count(take("seed"), "seed", 0));
  spec.cheater_fraction = to_double(take("cheaters"), "cheaters");
  spec.abort_rate = to_double(take("theta"), "theta");
  {
    const auto f = fields_of(take("adapt"), "adapt", 8);
    spec.adapt.enabled = to_bool(f[0], "adapt enabled");
    spec.adapt.initial_rho = to_double(f[1], "adapt initial_rho");
    spec.adapt.period = to_double(f[2], "adapt period");
    spec.adapt.phi_lo = to_double(f[3], "adapt phi_lo");
    spec.adapt.phi_hi = to_double(f[4], "adapt phi_hi");
    spec.adapt.step_up = to_double(f[5], "adapt step_up");
    spec.adapt.step_down = to_double(f[6], "adapt step_down");
    spec.adapt.consecutive =
        static_cast<unsigned>(to_count(f[7], "adapt consecutive", 0));
  }
  spec.faults = parse_faults(take("faults"));
  spec.num_chunks =
      static_cast<unsigned>(to_count(take("chunks"), "chunks", 1));
  spec.chunk_policy = sim::piece_policy_from_string(take("piece"));
  spec.chunk_suppression = to_double(take("suppress"), "suppress");

  // Demand-model keys are optional on the wire — the encoder omits them
  // at their homogeneous defaults so pre-demand-model fingerprints stay
  // byte-identical — but when present they are parsed strictly (unknown
  // arrival kinds, non-numeric or out-of-domain fields all throw).
  const auto take_optional = [&fields](const char* key, std::string* value) {
    const auto it = fields.find(key);
    if (it == fields.end()) return false;
    *value = it->second;
    fields.erase(it);
    return true;
  };
  std::string demand;
  if (take_optional("arrival", &demand)) {
    spec.arrival = fluid::parse_arrival(demand);
    if (spec.arrival.homogeneous()) {
      malformed("arrival key present but homogeneous (non-canonical wire)");
    }
  }
  if (take_optional("classes", &demand)) {
    spec.bandwidth_classes = fluid::parse_classes(demand);
    if (spec.bandwidth_classes.empty()) {
      malformed("classes key present but empty (non-canonical wire)");
    }
  }
  if (take_optional("ereps", &demand)) {
    spec.epidemic_replications =
        static_cast<unsigned>(to_count(demand, "ereps", 1));
    if (spec.epidemic_replications == 8) {
      malformed("ereps key present at its default (non-canonical wire)");
    }
  }

  if (!fields.empty()) {
    malformed("unknown key '" + fields.begin()->first +
              "' (client/daemon generation mismatch?)");
  }
  spec.validate();
  return spec;
}

}  // namespace btmf::model
