#include "btmf/model/spec.h"

#include "btmf/util/check.h"
#include "btmf/util/strings.h"

namespace btmf::model {

void ScenarioSpec::validate() const {
  BTMF_CHECK_MSG(num_files >= 1, "num_files must be >= 1");
  BTMF_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                 "correlation p must lie in [0, 1]");
  BTMF_CHECK_MSG(visit_rate > 0.0, "visit_rate lambda0 must be positive");
  fluid.validate();
  arrival.validate();
  fluid::validate_classes(bandwidth_classes);
  BTMF_CHECK_MSG(bandwidth_classes.size() <= 16,
                 "at most 16 bandwidth classes are supported");
  BTMF_CHECK_MSG(epidemic_replications >= 1,
                 "epidemic_replications must be >= 1");
  BTMF_CHECK_MSG(rho >= 0.0 && rho <= 1.0, "rho must lie in [0, 1]");
  BTMF_CHECK_MSG(
      rho_per_class.empty() || rho_per_class.size() == num_files,
      "rho_per_class must be empty or hold one entry per class");
  for (const double r : rho_per_class) {
    BTMF_CHECK_MSG(r >= 0.0 && r <= 1.0,
                   "every rho_per_class entry must lie in [0, 1]");
  }
  BTMF_CHECK_MSG(transient_samples >= 2,
                 "transient_samples must be >= 2 (endpoints)");
  BTMF_CHECK_MSG(horizon > 0.0, "horizon must be positive");
  BTMF_CHECK_MSG(warmup >= 0.0 && warmup < horizon,
                 "warmup must lie in [0, horizon)");
  BTMF_CHECK_MSG(cheater_fraction >= 0.0 && cheater_fraction <= 1.0,
                 "cheater_fraction must lie in [0, 1]");
  BTMF_CHECK_MSG(abort_rate >= 0.0, "abort_rate theta must be >= 0");
  BTMF_CHECK_MSG(num_chunks >= 1, "num_chunks must be >= 1");
  BTMF_CHECK_MSG(chunk_suppression >= 0.0 && chunk_suppression <= 1.0,
                 "chunk_suppression must lie in [0, 1]");
  BTMF_CHECK_MSG(shards >= 1, "shards must be >= 1");
  faults.validate();
}

namespace {

std::string exact(double v) { return util::format_double_exact(v); }

void append_doubles(std::string& out, const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += exact(values[i]);
  }
}

/// Every fault entry with every field, in schedule-declaration order.
/// A plan differing in any single number fingerprints differently.
std::string fault_fingerprint(const sim::FaultPlan& plan) {
  std::string out;
  for (const sim::TrackerOutageFault& f : plan.tracker_outages) {
    out += "tracker(" + exact(f.start) + ',' + exact(f.duration) + ',' +
           (f.drop ? '1' : '0') + ',' + exact(f.readmit_rate) + ')';
  }
  for (const sim::SeedFailureFault& f : plan.seed_failures) {
    out += "seed(" + exact(f.start) + ',' + exact(f.duration) + ')';
  }
  for (const sim::ChurnBurstFault& f : plan.churn_bursts) {
    out += "churn(" + exact(f.time) + ',' + exact(f.kill_fraction) + ',' +
           exact(f.progress_loss) + ',' + exact(f.backoff_rate) + ')';
  }
  for (const sim::BandwidthFault& f : plan.bandwidth_faults) {
    out += "bw(" + exact(f.start) + ',' + exact(f.duration) + ',' +
           exact(f.scale) + ')';
  }
  return out;
}

}  // namespace

std::string ScenarioSpec::fingerprint() const {
  std::string out =
      "k=" + std::to_string(num_files) + ";p=" + exact(correlation) +
      ";lambda0=" + exact(visit_rate) + ";mu=" + exact(fluid.mu) +
      ";eta=" + exact(fluid.eta) + ";gamma=" + exact(fluid.gamma) +
      ";scheme=" + std::string(fluid::to_string(scheme)) +
      ";rho=" + exact(rho);
  out += ";rho_per_class=";
  append_doubles(out, rho_per_class);
  out += ";solver=" + exact(solver.residual_tol) + ',' +
         exact(solver.chunk_time) + ',' + exact(solver.chunk_growth) + ',' +
         std::to_string(solver.max_chunks) + ',' +
         (solver.polish_with_newton ? '1' : '0') + ',' +
         (solver.clamp_nonnegative ? '1' : '0');
  out += ";ode=" + exact(solver.ode.rtol) + ',' + exact(solver.ode.atol) +
         ',' + exact(solver.ode.initial_dt) + ',' + exact(solver.ode.max_dt) +
         ',' + std::to_string(solver.ode.max_steps) + ',' +
         (solver.ode.clamp_nonnegative ? '1' : '0');
  out += ";samples=" + std::to_string(transient_samples);
  out += ";horizon=" + exact(horizon) + ";warmup=" + exact(warmup) +
         ";seed=" + std::to_string(seed) +
         ";cheaters=" + exact(cheater_fraction) +
         ";theta=" + exact(abort_rate);
  out += ";adapt=" + std::string(adapt.enabled ? "1" : "0") + ',' +
         exact(adapt.initial_rho) + ',' + exact(adapt.period) + ',' +
         exact(adapt.phi_lo) + ',' + exact(adapt.phi_hi) + ',' +
         exact(adapt.step_up) + ',' + exact(adapt.step_down) + ',' +
         std::to_string(adapt.consecutive);
  out += ";faults=" + fault_fingerprint(faults);
  out += ";chunks=" + std::to_string(num_chunks) +
         ";piece=" + std::string(sim::to_string(chunk_policy)) +
         ";suppress=" + exact(chunk_suppression);
  // Demand-model keys are emitted only away from their homogeneous
  // defaults so every spec that predates the demand model keeps its
  // exact cache key (pinned by spec_test and the reproduce byte-diff).
  if (!arrival.homogeneous()) out += ";arrival=" + fluid::format_arrival(arrival);
  if (!bandwidth_classes.empty()) {
    out += ";classes=" + fluid::format_classes(bandwidth_classes);
  }
  if (epidemic_replications != 8) {
    out += ";ereps=" + std::to_string(epidemic_replications);
  }
  // `shards` and `kernel_threads` are intentionally absent: the sharded
  // kernel is bit-identical across every execution configuration, so a
  // cached result keyed without them serves all of them.
  return out;
}

sim::SimConfig sim_config_from_spec(const ScenarioSpec& spec) {
  sim::SimConfig config;
  config.num_files = spec.num_files;
  config.correlation = spec.correlation;
  config.visit_rate = spec.visit_rate;
  config.arrival = spec.arrival;
  config.bandwidth_classes = spec.bandwidth_classes;
  config.fluid = spec.fluid;
  config.scheme = spec.scheme;
  config.rho = spec.rho;
  config.cheater_fraction = spec.cheater_fraction;
  config.adapt = spec.adapt;
  config.abort_rate = spec.abort_rate;
  config.horizon = spec.horizon;
  config.warmup = spec.warmup;
  config.seed = spec.seed;
  config.faults = spec.faults;
  config.shards = spec.shards;
  config.kernel_threads = spec.kernel_threads;
  return config;
}

}  // namespace btmf::model
