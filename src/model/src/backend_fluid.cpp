// The two fluid backends.
//
//  * fluid-equilibrium — the paper's steady states. This is the evaluation
//    logic that used to live in core::evaluate_scheme, moved here verbatim
//    so core::evaluate_scheme can be a thin wrapper; every number it
//    produced before the refactor is reproduced bit-identically.
//  * fluid-transient — the same ODE systems integrated from an empty
//    torrent to the spec's horizon and read out with Little's law at the
//    endpoint, with the sampled population trajectory attached. Converges
//    to fluid-equilibrium as horizon -> inf (the conformance matrix pins
//    the agreement at the default horizon).
#include <cmath>
#include <limits>
#include <span>

#include "backends.h"
#include "btmf/fluid/mfcd.h"
#include "btmf/fluid/mtcd.h"
#include "btmf/fluid/mtsd.h"
#include "btmf/fluid/single_torrent.h"
#include "btmf/fluid/transient.h"

namespace btmf::model {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// MTCD/MFCD per-class metrics with a given per-file factor A.
fluid::PerClassMetrics concurrent_metrics(double per_file_factor,
                                          double gamma, unsigned num_classes,
                                          std::span<const double> rates) {
  std::vector<double> online(num_classes), download(num_classes);
  for (unsigned i = 1; i <= num_classes; ++i) {
    if (rates.empty() || rates[i - 1] > 0.0) {
      download[i - 1] = static_cast<double>(i) * per_file_factor;
      online[i - 1] = download[i - 1] + 1.0 / gamma;
    } else {
      download[i - 1] = kNaN;
      online[i - 1] = kNaN;
    }
  }
  return fluid::make_per_class_metrics(std::move(online),
                                       std::move(download));
}

/// Shared Outcome scaffolding: identity fields and the entry-rate weights.
Outcome outcome_for(const ScenarioSpec& spec) {
  Outcome outcome;
  outcome.scheme = spec.scheme;
  outcome.correlation = spec.correlation;
  outcome.rho =
      spec.scheme == fluid::SchemeKind::kCmfsd ? spec.rho : kNaN;
  outcome.class_entry_rates = spec.correlation_model().system_entry_rates();
  return outcome;
}

/// Fills the weighted system averages from the per-class metrics.
void finish_averages(Outcome& outcome) {
  if (outcome.correlation == 0.0) {
    // No peer requests anything; the averages are the class-1 limits.
    outcome.avg_online_per_file = outcome.per_class.online_per_file.empty()
                                      ? kNaN
                                      : outcome.per_class.online_per_file[0];
    outcome.avg_download_per_file =
        outcome.per_class.download_per_file.empty()
            ? kNaN
            : outcome.per_class.download_per_file[0];
    outcome.avg_online_per_user = outcome.avg_online_per_file;
    return;
  }
  outcome.avg_online_per_file = fluid::average_online_time_per_file(
      outcome.per_class, outcome.class_entry_rates);
  outcome.avg_download_per_file = fluid::average_download_time_per_file(
      outcome.per_class, outcome.class_entry_rates);
  outcome.avg_online_per_user = fluid::average_online_time_per_user(
      outcome.per_class, outcome.class_entry_rates);
}

fluid::CmfsdModel cmfsd_model(const ScenarioSpec& spec,
                              std::vector<double> rates) {
  return spec.rho_per_class.empty()
             ? fluid::CmfsdModel(spec.fluid, std::move(rates), spec.rho)
             : fluid::CmfsdModel(spec.fluid, std::move(rates),
                                 spec.rho_per_class);
}

/// The state the Little's-law readout is evaluated at. An autonomous
/// system is read at the trajectory endpoint (it has converged to the
/// steady state); under a time-varying arrival process there is no steady
/// state, so the readout averages the uniformly sampled states across the
/// post-warmup window instead — paired with the window-mean arrival rate
/// below, that is Little's law over the observation window.
std::vector<double> readout_state(const fluid::TransientSeries& series,
                                  const ScenarioSpec& spec) {
  if (spec.arrival.homogeneous()) return series.states.back();
  std::vector<double> mean(series.states.back().size(), 0.0);
  std::size_t count = 0;
  for (std::size_t s = 0; s < series.times.size(); ++s) {
    if (series.times[s] < spec.warmup) continue;
    for (std::size_t c = 0; c < mean.size(); ++c) {
      mean[c] += series.states[s][c];
    }
    ++count;
  }
  for (double& v : mean) v /= static_cast<double>(count);
  return mean;
}

/// Mean arrival-rate modulation over the readout window (exactly 1 for a
/// homogeneous process, keeping that path's arithmetic bit-identical).
double readout_modulation(const ScenarioSpec& spec) {
  return spec.arrival.homogeneous()
             ? 1.0
             : spec.arrival.mean_rate(1.0, spec.warmup, spec.horizon);
}

// ---------------------------------------------------------------------------

class FluidEquilibriumBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "fluid-equilibrium";
  }

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.zero_correlation = true;  // closed forms take the p -> 0 limit
    caps.rho_per_class = true;
    return caps;
  }

 protected:
  [[nodiscard]] Outcome do_evaluate(const ScenarioSpec& spec) const override {
    Outcome outcome = outcome_for(spec);
    const unsigned k = spec.num_files;
    switch (spec.scheme) {
      case fluid::SchemeKind::kMtcd:
      case fluid::SchemeKind::kMfcd: {
        if (spec.correlation == 0.0) {
          // p -> 0 limit: (1 - (1-p)^K)/(K p) -> 1, so A -> T. All classes
          // are limits of conditional metrics, so fill every class.
          const double t_single =
              fluid::single_torrent_download_time(spec.fluid);
          outcome.per_class = concurrent_metrics(
              t_single, spec.fluid.gamma, k, std::span<const double>{});
        } else {
          const double per_file_factor = fluid::mfcd_download_time_per_file(
              spec.fluid, spec.correlation_model());
          outcome.per_class =
              concurrent_metrics(per_file_factor, spec.fluid.gamma, k,
                                 outcome.class_entry_rates);
        }
        break;
      }
      case fluid::SchemeKind::kMtsd: {
        outcome.per_class = fluid::mtsd_metrics(spec.fluid, k).metrics;
        break;
      }
      case fluid::SchemeKind::kCmfsd: {
        outcome.per_class =
            cmfsd_model(spec, outcome.class_entry_rates).solve(spec.solver)
                .metrics;
        break;
      }
    }
    finish_averages(outcome);
    return outcome;
  }
};

// ---------------------------------------------------------------------------

class FluidTransientBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "fluid-transient";
  }

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.trajectory = true;
    caps.rho_per_class = true;
    caps.arrivals_time_varying = true;  // the ODEs integrate lambda(t)
    return caps;
  }

 protected:
  [[nodiscard]] Outcome do_evaluate(const ScenarioSpec& spec) const override {
    Outcome outcome = outcome_for(spec);
    const fluid::CorrelationModel corr = spec.correlation_model();

    fluid::TransientOptions options;
    options.t_end = spec.horizon;
    options.samples = spec.transient_samples;
    options.ode = spec.solver.ode;

    switch (spec.scheme) {
      case fluid::SchemeKind::kMtcd:
      case fluid::SchemeKind::kMfcd: {
        // One representative torrent (MFCD: subtorrent — the paper's
        // Sec. 3.4 equivalence makes the two schemes share one ODE, so
        // their transient outcomes are bit-identical by construction).
        const std::vector<double> rates = corr.per_torrent_entry_rates();
        const unsigned k = spec.num_files;
        const fluid::TransientSeries series = fluid::sample_trajectory(
            fluid::mtcd_rhs(spec.fluid, rates, spec.arrival),
            std::vector<double>(2 * k, 0.0), options);
        const std::vector<double> end = readout_state(series, spec);
        const double mod = readout_modulation(spec);
        std::vector<double> online(k), download(k);
        for (unsigned i = 1; i <= k; ++i) {
          if (rates[i - 1] > 0.0) {
            // Little's law per torrent: a class-i downloader's sojourn
            // x_i / lambda_i is its whole concurrent phase i * A.
            download[i - 1] = end[i - 1] / (rates[i - 1] * mod);
            online[i - 1] = download[i - 1] + 1.0 / spec.fluid.gamma;
          } else {
            download[i - 1] = kNaN;
            online[i - 1] = kNaN;
          }
        }
        outcome.per_class = fluid::make_per_class_metrics(
            std::move(online), std::move(download));
        attach_trajectory(outcome, series, k);
        break;
      }
      case fluid::SchemeKind::kMtsd: {
        // Every torrent is an identical Qiu-Srikant system fed by the
        // sequential visits of all classes: arrival rate lambda0 * p.
        const double rate = corr.per_torrent_total_rate();
        const fluid::TransientSeries series = fluid::sample_trajectory(
            fluid::single_torrent_rhs(spec.fluid, rate, spec.arrival),
            {0.0, 0.0}, options);
        const double t_file =
            readout_state(series, spec)[0] / (rate * readout_modulation(spec));
        const unsigned k = spec.num_files;
        std::vector<double> online(k), download(k);
        for (unsigned i = 1; i <= k; ++i) {
          download[i - 1] = i * t_file;
          online[i - 1] = i * (t_file + 1.0 / spec.fluid.gamma);
        }
        outcome.per_class = fluid::make_per_class_metrics(
            std::move(online), std::move(download));
        attach_trajectory(outcome, series, 1);
        break;
      }
      case fluid::SchemeKind::kCmfsd: {
        const fluid::CmfsdModel model =
            cmfsd_model(spec, outcome.class_entry_rates);
        const fluid::TransientSeries series = fluid::sample_trajectory(
            model.rhs(spec.arrival),
            std::vector<double>(model.state_size(), 0.0), options);
        outcome.per_class =
            model.metrics_from_state(readout_state(series, spec));
        if (const double mod = readout_modulation(spec); mod != 1.0) {
          // metrics_from_state divided by the base rates; rescale its
          // Little's-law quotients to the window-mean arrival rate.
          std::vector<double> online(spec.num_files), download(spec.num_files);
          for (unsigned i = 0; i < spec.num_files; ++i) {
            download[i] = outcome.per_class.download_time[i] / mod;
            online[i] = download[i] + 1.0 / spec.fluid.gamma;
          }
          outcome.per_class = fluid::make_per_class_metrics(
              std::move(online), std::move(download));
        }
        Trajectory trajectory;
        trajectory.time = series.times;
        trajectory.downloaders = series.map([&](std::span<const double> y) {
          double total = 0.0;
          for (unsigned i = 1; i <= model.num_classes(); ++i) {
            for (unsigned j = 1; j <= i; ++j) total += y[model.x_index(i, j)];
          }
          return total;
        });
        trajectory.seeds = series.map([&](std::span<const double> y) {
          double total = 0.0;
          for (unsigned i = 1; i <= model.num_classes(); ++i) {
            total += y[model.y_index(i)];
          }
          return total;
        });
        outcome.trajectory = std::move(trajectory);
        break;
      }
    }
    finish_averages(outcome);
    return outcome;
  }

 private:
  /// For the {x^1..x^K, y^1..y^K} state layouts: totals per sample.
  static void attach_trajectory(Outcome& outcome,
                                const fluid::TransientSeries& series,
                                unsigned num_classes) {
    Trajectory trajectory;
    trajectory.time = series.times;
    trajectory.downloaders = series.map([=](std::span<const double> y) {
      double total = 0.0;
      for (unsigned i = 0; i < num_classes; ++i) total += y[i];
      return total;
    });
    trajectory.seeds = series.map([=](std::span<const double> y) {
      double total = 0.0;
      for (unsigned i = 0; i < num_classes; ++i) total += y[num_classes + i];
      return total;
    });
    outcome.trajectory = std::move(trajectory);
  }
};

}  // namespace

namespace detail {

const Backend& fluid_equilibrium_backend() {
  static const FluidEquilibriumBackend backend;
  return backend;
}

const Backend& fluid_transient_backend() {
  static const FluidTransientBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace btmf::model
