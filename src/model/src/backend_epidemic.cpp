// The stochastic-epidemic backend.
//
// Kesidis et al. (arXiv 0811.1003) model a BitTorrent swarm as a
// stochastic epidemic: integer downloader/seed populations evolving as a
// continuous-time Markov chain whose transition rates are exactly the
// flux terms of the fluid ODEs, so the fluid model is the CTMC's
// large-population (deterministic) limit. This backend simulates that
// CTMC directly with Gillespie's algorithm, one representative torrent
// per scheme, and reads the post-warmup time averages out with Little's
// law — the conformance matrix pins its mean against fluid-equilibrium
// and kernel-sim on homogeneous scenarios, and against kernel-sim on
// time-varying ones (where no equilibrium backend applies).
//
// Non-homogeneous arrivals are sampled by thinning: the arrival channels
// enter the Gillespie rate sum at their peak rate and an accepted event
// is kept with probability lambda(t)/lambda_peak, which is exact for any
// bounded rate function (Lewis & Shedler 1979).
//
// Population states are small integers (the paper's scenarios put a few
// dozen peers in a torrent), so single sample paths are noisy; the
// outcome is the mean over spec.epidemic_replications independent
// replications with seeds derived via parallel::derive_seed.
//
// CMFSD is declared unsupported: the source paper gives no CTMC
// counterpart for its stage-structured collaborative allocator, and
// inventing one here would produce numbers no reference validates.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "backends.h"
#include "btmf/fluid/metrics.h"
#include "btmf/parallel/seeds.h"
#include "btmf/sim/rng.h"
#include "btmf/util/check.h"

namespace btmf::model {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Time-averaged downloader populations of one CTMC sample path over
/// [warmup, horizon], one entry per class (MTSD uses one "class").
struct PathAverages {
  std::vector<double> downloaders;
};

/// Accumulates population * dt clipped to the measurement window.
class WindowAverager {
 public:
  WindowAverager(std::size_t classes, double warmup, double horizon)
      : sums_(classes, 0.0), warmup_(warmup), horizon_(horizon) {}

  void hold(const std::vector<long long>& x, double from, double to) {
    const double lo = std::max(from, warmup_);
    const double hi = std::min(to, horizon_);
    if (hi <= lo) return;
    const double dt = hi - lo;
    for (std::size_t k = 0; k < sums_.size(); ++k) {
      sums_[k] += static_cast<double>(x[k]) * dt;
    }
  }

  [[nodiscard]] PathAverages finish() const {
    PathAverages averages;
    averages.downloaders.resize(sums_.size());
    const double window = horizon_ - warmup_;
    for (std::size_t k = 0; k < sums_.size(); ++k) {
      averages.downloaders[k] = sums_[k] / window;
    }
    return averages;
  }

 private:
  std::vector<double> sums_;
  double warmup_;
  double horizon_;
};

/// One Gillespie sample path of the multi-torrent CTMC (MTCD and MFCD
/// share it, exactly as they share one fluid ODE): per-class integer
/// downloaders x_i and seeds y_i of one representative torrent, with the
/// mtcd_rhs flux terms as transition rates.
PathAverages run_concurrent_path(const ScenarioSpec& spec,
                                 const std::vector<double>& rates,
                                 sim::RandomStream& rng) {
  const std::size_t k = rates.size();
  const double mu = spec.fluid.mu;
  const double eta = spec.fluid.eta;
  const double gamma = spec.fluid.gamma;
  std::vector<long long> x(k, 0), y(k, 0);
  std::vector<double> peak(k), completion(k);
  for (std::size_t i = 0; i < k; ++i) {
    peak[i] = spec.arrival.peak_rate(rates[i]);
  }
  WindowAverager averager(k, spec.warmup, spec.horizon);

  double t = 0.0;
  while (t < spec.horizon) {
    // Channel rates at the current state. Arrival channels use the peak
    // rate (thinned on acceptance); completion channels are the fluid
    // flux eta mu/i x_i + share_i * sum_l (mu/l) y_l at integer x, y.
    double seed_service = 0.0;
    double share_denominator = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double files = static_cast<double>(i + 1);
      seed_service += mu / files * static_cast<double>(y[i]);
      share_denominator += static_cast<double>(x[i]) / files;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double files = static_cast<double>(i + 1);
      const double tft = eta * mu / files * static_cast<double>(x[i]);
      const double share =
          share_denominator > 0.0
              ? (static_cast<double>(x[i]) / files) / share_denominator
              : 0.0;
      completion[i] = tft + share * seed_service;
      total += peak[i] + completion[i] + gamma * static_cast<double>(y[i]);
    }
    BTMF_CHECK_MSG(total > 0.0,
                   "stochastic-epidemic: all transition rates vanished");

    const double dt = rng.exponential(total);
    averager.hold(x, t, t + dt);
    t += dt;
    if (t >= spec.horizon) break;

    double pick = rng.uniform() * total;
    for (std::size_t i = 0; i < k; ++i) {
      if (pick < peak[i]) {
        // Thinning: accept the arrival with probability lambda(t)/peak.
        if (spec.arrival.homogeneous() ||
            rng.uniform() * peak[i] <= spec.arrival.rate_at(rates[i], t)) {
          ++x[i];
        }
        break;
      }
      pick -= peak[i];
      if (pick < completion[i]) {
        --x[i];
        ++y[i];
        break;
      }
      pick -= completion[i];
      const double departure = gamma * static_cast<double>(y[i]);
      if (pick < departure) {
        --y[i];
        break;
      }
      pick -= departure;
      // Falling past the last channel can only happen through floating-
      // point rounding of the partial sums; treat it as a no-op step.
    }
  }
  return averager.finish();
}

/// One Gillespie sample path of the single-torrent (Qiu-Srikant) CTMC
/// that underlies MTSD: arrivals at the sequential per-torrent rate,
/// completions at mu (eta x + y) while downloaders exist, departures at
/// gamma y.
PathAverages run_sequential_path(const ScenarioSpec& spec, double rate,
                                 sim::RandomStream& rng) {
  const double mu = spec.fluid.mu;
  const double eta = spec.fluid.eta;
  const double gamma = spec.fluid.gamma;
  std::vector<long long> x(1, 0);
  long long y = 0;
  const double peak = spec.arrival.peak_rate(rate);
  WindowAverager averager(1, spec.warmup, spec.horizon);

  double t = 0.0;
  while (t < spec.horizon) {
    const double completion =
        x[0] > 0 ? mu * (eta * static_cast<double>(x[0]) +
                         static_cast<double>(y))
                 : 0.0;
    const double departure = gamma * static_cast<double>(y);
    const double total = peak + completion + departure;

    const double dt = rng.exponential(total);
    averager.hold(x, t, t + dt);
    t += dt;
    if (t >= spec.horizon) break;

    const double pick = rng.uniform() * total;
    if (pick < peak) {
      if (spec.arrival.homogeneous() ||
          rng.uniform() * peak <= spec.arrival.rate_at(rate, t)) {
        ++x[0];
      }
    } else if (pick < peak + completion) {
      --x[0];
      ++y;
    } else if (y > 0) {
      --y;
    }
  }
  return averager.finish();
}

class StochasticEpidemicBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "stochastic-epidemic";
  }

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.monte_carlo = true;
    caps.arrivals_time_varying = true;  // exact thinning against the peak
    // No CTMC counterpart of the CMFSD stage allocator exists in the
    // source paper (arXiv 0811.1003 covers the single-swarm epidemic and
    // its multi-torrent products), so CMFSD is a typed refusal.
    caps.schemes[static_cast<std::size_t>(fluid::SchemeKind::kCmfsd)] = false;
    return caps;
  }

 protected:
  [[nodiscard]] Outcome do_evaluate(const ScenarioSpec& spec) const override {
    Outcome outcome;
    outcome.scheme = spec.scheme;
    outcome.correlation = spec.correlation;
    outcome.rho = kNaN;
    const fluid::CorrelationModel corr = spec.correlation_model();
    outcome.class_entry_rates = corr.system_entry_rates();

    const unsigned k = spec.num_files;
    const bool sequential = spec.scheme == fluid::SchemeKind::kMtsd;
    const std::vector<double> rates = corr.per_torrent_entry_rates();
    const double total_rate = corr.per_torrent_total_rate();

    // Mean of the per-class time-averaged downloader populations across
    // replications; Little's law is applied to the mean (the estimators
    // share one denominator, so averaging populations first is the
    // lower-variance order).
    std::vector<double> mean_downloaders(sequential ? 1 : k, 0.0);
    for (unsigned r = 0; r < spec.epidemic_replications; ++r) {
      sim::RandomStream rng(parallel::derive_seed(spec.seed, r));
      const PathAverages path =
          sequential ? run_sequential_path(spec, total_rate, rng)
                     : run_concurrent_path(spec, rates, rng);
      for (std::size_t i = 0; i < mean_downloaders.size(); ++i) {
        mean_downloaders[i] += path.downloaders[i];
      }
    }
    for (double& v : mean_downloaders) {
      v /= static_cast<double>(spec.epidemic_replications);
    }

    std::vector<double> online(k), download(k);
    if (sequential) {
      // Every torrent is identical; one torrent's Little's law gives the
      // per-file time, multiplied out per class like the fluid readout.
      const double mean_rate =
          spec.arrival.mean_rate(total_rate, spec.warmup, spec.horizon);
      const double t_file = mean_downloaders[0] / mean_rate;
      for (unsigned i = 1; i <= k; ++i) {
        download[i - 1] = i * t_file;
        online[i - 1] = i * (t_file + 1.0 / spec.fluid.gamma);
      }
    } else {
      for (unsigned i = 1; i <= k; ++i) {
        if (rates[i - 1] > 0.0) {
          const double mean_rate = spec.arrival.mean_rate(
              rates[i - 1], spec.warmup, spec.horizon);
          download[i - 1] = mean_downloaders[i - 1] / mean_rate;
          online[i - 1] = download[i - 1] + 1.0 / spec.fluid.gamma;
        } else {
          download[i - 1] = kNaN;
          online[i - 1] = kNaN;
        }
      }
    }
    outcome.per_class =
        fluid::make_per_class_metrics(std::move(online), std::move(download));
    outcome.avg_online_per_file = fluid::average_online_time_per_file(
        outcome.per_class, outcome.class_entry_rates);
    outcome.avg_download_per_file = fluid::average_download_time_per_file(
        outcome.per_class, outcome.class_entry_rates);
    outcome.avg_online_per_user = fluid::average_online_time_per_user(
        outcome.per_class, outcome.class_entry_rates);
    return outcome;
  }
};

}  // namespace

namespace detail {

const Backend& stochastic_epidemic_backend() {
  static const StochasticEpidemicBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace btmf::model
