// Wire codec for ScenarioSpec: the canonical fingerprint, made two-way.
//
// The serve protocol (docs/SERVE.md) ships scenario descriptions between
// processes, and the one encoding that can never drift from the cache key
// is the fingerprint itself: ScenarioSpec::fingerprint() is already a
// canonical, whitespace-free "key=value;..." rendering of every
// result-affecting field with exact round-trip doubles. encode_spec() is
// therefore defined as the fingerprint, and decode_spec() is its exact
// inverse — decode(encode(s)) fingerprints identically to s, so a daemon
// that keys its cache on the decoded spec computes the very same key the
// sending client would. Execution knobs (shards, kernel_threads) are
// excluded on both sides, exactly as they are from the fingerprint: the
// serving process decides its own execution configuration.
#pragma once

#include <string>
#include <string_view>

#include "btmf/model/spec.h"

namespace btmf::model {

/// Canonical single-line wire form of `spec` — identical to
/// spec.fingerprint(). Never contains whitespace or newlines.
[[nodiscard]] std::string encode_spec(const ScenarioSpec& spec);

/// Exact inverse of encode_spec. Requires every fingerprint key exactly
/// once (order-insensitive) and rejects unknown keys, so a spec from a
/// different library generation fails loudly instead of half-parsing.
/// The decoded spec is validate()d before it is returned. Throws
/// btmf::ConfigError on any malformed input.
[[nodiscard]] ScenarioSpec decode_spec(std::string_view wire);

}  // namespace btmf::model
