// The one scenario description every evaluator understands.
//
// A ScenarioSpec is the typed union of everything the repository's
// evaluators consume: the paper's scenario (K, p, lambda0, fluid
// parameters), the downloading scheme and its rho knob(s), the fluid
// solver settings, and the stochastic-run knobs (horizon, seed, cheaters,
// Adapt, fault plan, chunking). Each backend reads the subset it
// understands and declares — via Backend::capabilities() — which fields it
// refuses; nothing is silently ignored that could change a result.
//
// The spec carries one *canonical fingerprint* that subsumes both the old
// core::fingerprint(ScenarioConfig/EvaluateOptions) pair and the
// hand-rolled sim_fingerprint that reproduce.cpp used to maintain: every
// field that can move any backend's output is folded in with exact
// round-trip doubles, so keying a cache on (backend name, fingerprint)
// makes stale hits impossible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/demand.h"
#include "btmf/fluid/params.h"
#include "btmf/fluid/schemes.h"
#include "btmf/math/equilibrium.h"
#include "btmf/sim/chunk_sim.h"
#include "btmf/sim/config.h"
#include "btmf/sim/faults.h"

namespace btmf::model {

struct ScenarioSpec {
  // --- scenario: the paper's Sec. 4 inputs -------------------------------
  unsigned num_files = 10;            ///< K
  double correlation = 0.5;           ///< p
  double visit_rate = 1.0;            ///< lambda0
  fluid::FluidParams fluid{};         ///< mu, eta, gamma

  // --- demand model ------------------------------------------------------
  /// Time shape of the visit rate: homogeneous Poisson by default, or a
  /// diurnal sinusoid / flash-crowd pulse train modulating visit_rate
  /// (see btmf/fluid/demand.h). Fingerprinted only when non-homogeneous,
  /// so every pre-existing spec keeps its exact cache key.
  fluid::ArrivalProcess arrival{};
  /// Heterogeneous bandwidth classes (weight, upload scale, download cap).
  /// Empty = one homogeneous class at the fluid parameters; fingerprinted
  /// only when non-empty.
  std::vector<fluid::BandwidthClass> bandwidth_classes;
  /// Replications averaged by the stochastic-epidemic backend (its
  /// CTMC sample paths are noisy at small populations). Fingerprinted
  /// only when not the default so existing keys are untouched.
  unsigned epidemic_replications = 8;

  // --- scheme ------------------------------------------------------------
  fluid::SchemeKind scheme = fluid::SchemeKind::kCmfsd;
  double rho = 0.0;                   ///< CMFSD bandwidth split
  /// Optional per-class rho for CMFSD (overrides `rho` when non-empty).
  std::vector<double> rho_per_class;

  // --- fluid backends ----------------------------------------------------
  /// Steady-state solver settings (fluid-equilibrium) and the ODE
  /// tolerances inside (shared with fluid-transient).
  math::EquilibriumOptions solver =
      fluid::CmfsdModel::default_solve_options();
  /// Uniform sample count of the fluid-transient trajectory (incl. t = 0).
  std::size_t transient_samples = 200;

  // --- stochastic backends (kernel-sim, chunk-sim) -----------------------
  double horizon = 6000.0;            ///< simulated end time / ODE t_end
  double warmup = 1500.0;             ///< statistics start here
  std::uint64_t seed = 42;
  double cheater_fraction = 0.0;      ///< multi-file users pinning rho = 1
  double abort_rate = 0.0;            ///< downloader abort rate theta
  sim::AdaptConfig adapt{};           ///< per-peer rho controller
  sim::FaultPlan faults{};            ///< declarative fault schedule

  // --- chunk-sim ---------------------------------------------------------
  unsigned num_chunks = 32;           ///< chunks per file
  /// Piece-selection policy of the chunk-level substrate (ignored by the
  /// fluid and kernel backends, which do not model pieces — but only the
  /// default passes their capability gate; see docs/PROTOCOL.md).
  sim::PiecePolicy chunk_policy = sim::PiecePolicy::kRarestFirst;
  /// Mode-suppression probability (used when chunk_policy is
  /// kModeSuppression; fingerprinted regardless).
  double chunk_suppression = 0.9;

  // --- kernel-sim execution (NOT part of the fingerprint) ----------------
  /// Torrent shards and worker threads for the sharded kernel. Results
  /// are bit-identical across every shards x kernel_threads configuration
  /// (the determinism contract in docs/SCALE.md), so these knobs are
  /// deliberately EXCLUDED from fingerprint(): a cached result computed
  /// at any sharding is valid for all of them.
  unsigned shards = 1;
  unsigned kernel_threads = 1;        ///< 0 = one per hardware core

  /// Throws btmf::ConfigError on out-of-range values (scenario ranges,
  /// rho/cheaters/theta in [0, 1], warmup < horizon, fault plan).
  void validate() const;

  /// Canonical, whitespace-free "key=value;..." description with exact
  /// round-trip doubles. Covers EVERY field above — editing any knob
  /// (including a single fault-plan entry or an Adapt threshold) changes
  /// the fingerprint, so content-addressed caches can never serve stale
  /// results. Backend identity is NOT included; cache keys prepend the
  /// backend name (see docs/SWEEP.md).
  [[nodiscard]] std::string fingerprint() const;

  [[nodiscard]] fluid::CorrelationModel correlation_model() const {
    return fluid::CorrelationModel(num_files, correlation, visit_rate);
  }
};

/// Maps the spec onto the event-kernel simulator's configuration (the
/// kernel-sim backend uses this; btmf_tool reuses it so telemetry sinks
/// can be attached to the exact same run the backend would perform).
/// Fields the spec does not model (seed-pool mode, download bandwidth
/// caps, per-file popularity profiles) keep their SimConfig defaults.
[[nodiscard]] sim::SimConfig sim_config_from_spec(const ScenarioSpec& spec);

}  // namespace btmf::model
