// The one typed result every backend produces.
//
// Cross-backend comparison (fluid steady state vs transient ODE vs
// event-kernel simulation vs chunk-level protocol simulation) only works
// if every evaluator reports the same quantities in the same shape. An
// Outcome carries the paper's headline metrics (per-class and
// system-average online/download times per file, with the entry-rate
// weights used to average them) plus backend-specific extras as optional
// attachments — a sampled trajectory, the full SimResult counters, the
// chunk simulator's emergent-eta measurement.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "btmf/fluid/metrics.h"
#include "btmf/fluid/schemes.h"
#include "btmf/sim/chunk_sim.h"
#include "btmf/sim/stats.h"

namespace btmf::model {

enum class OutcomeStatus {
  kOk,           ///< metrics are populated
  kUnsupported,  ///< the backend declared the spec outside its capabilities
  kFailed,       ///< evaluation threw (solver divergence, runaway run, ...)
};

/// A reduced population trajectory: total downloaders and seeds over time.
/// Fluid-transient samples its ODE; kernel-sim sums the per-class
/// population series its internal recorder always collects.
struct Trajectory {
  std::vector<double> time;
  std::vector<double> downloaders;
  std::vector<double> seeds;
};

struct Outcome {
  OutcomeStatus status = OutcomeStatus::kOk;
  /// kUnsupported: the capability reason; kFailed: the exception message.
  std::string error;

  fluid::SchemeKind scheme{};
  double correlation = 0.0;
  /// NaN for schemes without a rho knob.
  double rho = std::numeric_limits<double>::quiet_NaN();

  double avg_online_per_file = 0.0;    ///< the paper's headline metric
  double avg_download_per_file = 0.0;
  double avg_online_per_user = 0.0;

  fluid::PerClassMetrics per_class;
  /// System entry rates L_i used as averaging weights (the correlation
  /// model's rates; stochastic backends report their *measured* per-class
  /// arrival rates inside `sim`).
  std::vector<double> class_entry_rates;

  // --- optional backend-specific attachments -----------------------------
  std::optional<Trajectory> trajectory;        ///< fluid-transient, kernel-sim
  std::optional<sim::SimResult> sim;           ///< kernel-sim counters
  std::optional<sim::ChunkSimResult> chunk;    ///< chunk-sim measurements

  [[nodiscard]] bool ok() const { return status == OutcomeStatus::kOk; }
};

/// "ok" / "unsupported" / "failed" — stable strings for tables and logs.
[[nodiscard]] const char* to_string(OutcomeStatus status);

}  // namespace btmf::model
