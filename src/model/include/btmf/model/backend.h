// The backend seam: one interface every evaluator implements.
//
// A Backend turns a ScenarioSpec into an Outcome. Four are registered:
//
//   fluid-equilibrium  the paper's steady-state models (closed forms where
//                      they exist, transient-plus-Newton solve for CMFSD)
//   fluid-transient    the same ODEs integrated to the spec's horizon and
//                      read out with Little's law — plus the trajectory
//   kernel-sim         the policy-driven discrete-event kernel (replication
//                      -aware: Adapt, cheaters, faults, abort clocks)
//   chunk-sim          the chunk-level protocol substrate (single torrent,
//                      measures the emergent sharing efficiency eta)
//
// Capabilities are *declared*, not discovered by crashing: evaluate()
// returns a typed kUnsupported outcome for specs outside a backend's
// domain (e.g. CMFSD at p = 0 anywhere, a fault plan on a fluid backend),
// so cross-backend harnesses can walk the full scheme x backend matrix
// with no silent skips. See docs/BACKENDS.md for the capability table and
// the how-to-add-a-backend walkthrough.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "btmf/model/outcome.h"
#include "btmf/model/spec.h"

namespace btmf::model {

struct BackendCapabilities {
  /// Bit-identical outcomes for identical specs (all four backends; the
  /// stochastic ones are deterministic *per seed*).
  bool deterministic = true;
  /// Finite-sample Monte-Carlo noise: conformance comparisons against a
  /// fluid backend need a statistical tolerance, not an analytic one.
  bool monte_carlo = false;
  /// The outcome approximates the fluid steady state (false would mean a
  /// purely transient quantity; all current backends report steady-ish
  /// long-run metrics).
  bool steady_state = true;
  bool per_class = true;           ///< per-class metrics populated
  bool trajectory = false;         ///< Outcome::trajectory attached
  bool sim_counters = false;       ///< Outcome::sim attached

  /// Schemes the backend evaluates, indexed by fluid::SchemeKind.
  std::array<bool, 4> schemes{true, true, true, true};
  /// 0 = unlimited; chunk-sim sizes its piece bitmaps by file index so it
  /// declares the bitmask width (32) here.
  unsigned max_files = 0;
  /// Non-default ScenarioSpec::chunk_policy honoured (only the chunk-level
  /// substrate models pieces; every other backend refuses a spec that
  /// asks for a specific piece-selection policy rather than silently
  /// ignoring it).
  bool piece_policies = false;
  /// p = 0 acceptable (only the closed-form backend can take the limit
  /// analytically; Little's-law and sampling readouts need arrivals).
  bool zero_correlation = false;

  bool rho_per_class = false;      ///< ScenarioSpec::rho_per_class honoured
  bool adapt = false;              ///< AdaptConfig honoured
  bool cheaters = false;           ///< cheater_fraction honoured
  bool aborts = false;             ///< abort_rate honoured
  bool faults = false;             ///< FaultPlan honoured

  /// Non-homogeneous ArrivalProcess (diurnal, flash crowd) honoured: the
  /// backend integrates or samples lambda(t) rather than assuming a
  /// stationary rate. A homogeneous spec always passes this gate.
  bool arrivals_time_varying = false;
  /// Heterogeneous ScenarioSpec::bandwidth_classes honoured (per-class
  /// upload scales and download caps). An empty class list always passes.
  bool bandwidth_classes = false;

  [[nodiscard]] bool supports_scheme(fluid::SchemeKind scheme) const {
    return schemes[static_cast<std::size_t>(scheme)];
  }
};

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual BackendCapabilities capabilities() const = 0;

  /// Why this backend cannot evaluate `spec` (derived from the capability
  /// declaration plus the universal rules, e.g. CMFSD needs p > 0), or
  /// nullopt when it can. Does not validate field ranges — that is
  /// ScenarioSpec::validate()'s job. Virtual so a backend can refuse
  /// *combinations* its scalar capability bits cannot express (kernel-sim
  /// supports bandwidth classes and CMFSD, but not together); overrides
  /// must call the base implementation and only ever add reasons.
  [[nodiscard]] virtual std::optional<std::string> unsupported_reason(
      const ScenarioSpec& spec) const;

  /// Evaluates `spec`, never throwing for model-level problems: a
  /// malformed spec or an evaluation failure comes back as kFailed with
  /// the exception message, an out-of-capability spec as kUnsupported.
  [[nodiscard]] Outcome evaluate(const ScenarioSpec& spec) const;

  /// As evaluate() but throwing: btmf::ConfigError for malformed or
  /// unsupported specs, the original btmf::Error (SolverError, ...) for
  /// evaluation failures. What core::evaluate_scheme builds on.
  [[nodiscard]] Outcome evaluate_or_throw(const ScenarioSpec& spec) const;

 protected:
  /// The actual evaluation; called only on validated, supported specs.
  /// May throw btmf::Error.
  [[nodiscard]] virtual Outcome do_evaluate(const ScenarioSpec& spec) const
      = 0;
};

/// All registered backends, in the order listed above. Pointers are to
/// process-lifetime singletons.
const std::vector<const Backend*>& backend_registry();

/// Lookup by name; nullptr when unknown.
const Backend* find_backend(std::string_view name);

/// Lookup by name; throws btmf::ConfigError naming the known backends.
const Backend& require_backend(std::string_view name);

}  // namespace btmf::model
