#include "btmf/core/evaluate.h"

#include <utility>

#include "btmf/model/backend.h"
#include "btmf/util/check.h"

namespace btmf::core {

namespace {

/// The one translation between the legacy core API and the backend layer.
model::ScenarioSpec spec_from(const ScenarioConfig& scenario,
                              fluid::SchemeKind scheme,
                              const EvaluateOptions& options) {
  model::ScenarioSpec spec;
  spec.num_files = scenario.num_files;
  spec.correlation = scenario.correlation;
  spec.visit_rate = scenario.visit_rate;
  spec.fluid = scenario.fluid;
  spec.scheme = scheme;
  spec.rho = options.rho;
  spec.rho_per_class = options.rho_per_class;
  spec.solver = options.solver;
  return spec;
}

SchemeReport report_from(model::Outcome outcome) {
  SchemeReport report;
  report.scheme = outcome.scheme;
  report.correlation = outcome.correlation;
  report.rho = outcome.rho;
  report.avg_online_per_file = outcome.avg_online_per_file;
  report.avg_download_per_file = outcome.avg_download_per_file;
  report.avg_online_per_user = outcome.avg_online_per_user;
  report.per_class = std::move(outcome.per_class);
  report.class_entry_rates = std::move(outcome.class_entry_rates);
  return report;
}

}  // namespace

void ScenarioConfig::validate() const {
  BTMF_CHECK_MSG(num_files >= 1, "num_files must be >= 1");
  BTMF_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                 "correlation p must lie in [0, 1]");
  BTMF_CHECK_MSG(visit_rate > 0.0, "visit_rate lambda0 must be positive");
  fluid.validate();
}

SchemeReport evaluate_scheme(const ScenarioConfig& scenario,
                             fluid::SchemeKind scheme,
                             const EvaluateOptions& options) {
  // Thin wrapper over the fluid-equilibrium backend: same inputs, same
  // code path, same numbers — the steady-state logic lives in
  // src/model/src/backend_fluid.cpp now.
  const model::Backend& backend =
      model::require_backend("fluid-equilibrium");
  return report_from(
      backend.evaluate_or_throw(spec_from(scenario, scheme, options)));
}

std::vector<SchemeReport> evaluate_all_schemes(
    const ScenarioConfig& scenario, const EvaluateOptions& options) {
  const model::Backend& backend =
      model::require_backend("fluid-equilibrium");
  std::vector<SchemeReport> reports;
  reports.reserve(4);
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
        fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
    const model::ScenarioSpec spec = spec_from(scenario, scheme, options);
    // Declared-unsupported combinations (CMFSD at p = 0) are skipped;
    // real failures still surface as their original exceptions.
    if (backend.unsupported_reason(spec)) continue;
    reports.push_back(report_from(backend.evaluate_or_throw(spec)));
  }
  return reports;
}

}  // namespace btmf::core
