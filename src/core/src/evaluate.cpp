#include "btmf/core/evaluate.h"

#include <cmath>
#include <limits>

#include "btmf/fluid/mfcd.h"
#include "btmf/fluid/mtcd.h"
#include "btmf/fluid/mtsd.h"
#include "btmf/fluid/single_torrent.h"
#include "btmf/util/check.h"
#include "btmf/util/strings.h"

namespace btmf::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// MTCD/MFCD per-class metrics with a given per-file factor A.
fluid::PerClassMetrics concurrent_metrics(double per_file_factor,
                                          double gamma, unsigned num_classes,
                                          std::span<const double> rates) {
  std::vector<double> online(num_classes), download(num_classes);
  for (unsigned i = 1; i <= num_classes; ++i) {
    if (rates.empty() || rates[i - 1] > 0.0) {
      download[i - 1] = static_cast<double>(i) * per_file_factor;
      online[i - 1] = download[i - 1] + 1.0 / gamma;
    } else {
      download[i - 1] = kNaN;
      online[i - 1] = kNaN;
    }
  }
  return fluid::make_per_class_metrics(std::move(online),
                                       std::move(download));
}

}  // namespace

void ScenarioConfig::validate() const {
  BTMF_CHECK_MSG(num_files >= 1, "num_files must be >= 1");
  BTMF_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                 "correlation p must lie in [0, 1]");
  BTMF_CHECK_MSG(visit_rate > 0.0, "visit_rate lambda0 must be positive");
  fluid.validate();
}

SchemeReport evaluate_scheme(const ScenarioConfig& scenario,
                             fluid::SchemeKind scheme,
                             const EvaluateOptions& options) {
  scenario.validate();
  const unsigned k = scenario.num_files;

  SchemeReport report;
  report.scheme = scheme;
  report.correlation = scenario.correlation;
  report.rho = scheme == fluid::SchemeKind::kCmfsd ? options.rho : kNaN;

  const fluid::CorrelationModel corr = scenario.correlation_model();
  report.class_entry_rates = corr.system_entry_rates();

  switch (scheme) {
    case fluid::SchemeKind::kMtcd:
    case fluid::SchemeKind::kMfcd: {
      if (scenario.correlation == 0.0) {
        // p -> 0 limit: (1 - (1-p)^K)/(K p) -> 1, so A -> T. All classes
        // are limits of conditional metrics, so fill every class.
        const double t_single =
            fluid::single_torrent_download_time(scenario.fluid);
        report.per_class = concurrent_metrics(t_single, scenario.fluid.gamma,
                                              k, std::span<const double>{});
      } else {
        const double per_file_factor =
            fluid::mfcd_download_time_per_file(scenario.fluid, corr);
        report.per_class =
            concurrent_metrics(per_file_factor, scenario.fluid.gamma, k,
                               report.class_entry_rates);
      }
      break;
    }
    case fluid::SchemeKind::kMtsd: {
      report.per_class = fluid::mtsd_metrics(scenario.fluid, k).metrics;
      break;
    }
    case fluid::SchemeKind::kCmfsd: {
      BTMF_CHECK_MSG(scenario.correlation > 0.0,
                     "CMFSD needs p > 0 (no peer requests any file at p=0)");
      const fluid::CmfsdModel model =
          options.rho_per_class.empty()
              ? fluid::CmfsdModel(scenario.fluid, report.class_entry_rates,
                                  options.rho)
              : fluid::CmfsdModel(scenario.fluid, report.class_entry_rates,
                                  options.rho_per_class);
      report.per_class = model.solve(options.solver).metrics;
      break;
    }
  }

  if (scenario.correlation == 0.0) {
    // No peer requests anything; the averages are the class-1 limits.
    report.avg_online_per_file = report.per_class.online_per_file.empty()
                                     ? kNaN
                                     : report.per_class.online_per_file[0];
    report.avg_download_per_file =
        report.per_class.download_per_file.empty()
            ? kNaN
            : report.per_class.download_per_file[0];
    report.avg_online_per_user = report.avg_online_per_file;
    return report;
  }

  report.avg_online_per_file = fluid::average_online_time_per_file(
      report.per_class, report.class_entry_rates);
  report.avg_download_per_file = fluid::average_download_time_per_file(
      report.per_class, report.class_entry_rates);
  report.avg_online_per_user = fluid::average_online_time_per_user(
      report.per_class, report.class_entry_rates);
  return report;
}

std::string fingerprint(const ScenarioConfig& scenario) {
  const auto d = [](double v) { return util::format_double_exact(v); };
  return "k=" + std::to_string(scenario.num_files) +
         ";p=" + d(scenario.correlation) +
         ";lambda0=" + d(scenario.visit_rate) + ";mu=" + d(scenario.fluid.mu) +
         ";eta=" + d(scenario.fluid.eta) +
         ";gamma=" + d(scenario.fluid.gamma);
}

std::string fingerprint(const EvaluateOptions& options) {
  const auto d = [](double v) { return util::format_double_exact(v); };
  std::string out = "rho=" + d(options.rho);
  if (!options.rho_per_class.empty()) {
    out += ";rho_per_class=";
    for (std::size_t i = 0; i < options.rho_per_class.size(); ++i) {
      if (i != 0) out += ',';
      out += d(options.rho_per_class[i]);
    }
  }
  const math::EquilibriumOptions& solver = options.solver;
  out += ";solver=" + d(solver.residual_tol) + ',' + d(solver.chunk_time) +
         ',' + d(solver.chunk_growth) + ',' +
         std::to_string(solver.max_chunks) + ',' +
         (solver.polish_with_newton ? '1' : '0') + ',' +
         (solver.clamp_nonnegative ? '1' : '0');
  out += ";ode=" + d(solver.ode.rtol) + ',' + d(solver.ode.atol) + ',' +
         d(solver.ode.initial_dt) + ',' + d(solver.ode.max_dt) + ',' +
         std::to_string(solver.ode.max_steps) + ',' +
         (solver.ode.clamp_nonnegative ? '1' : '0');
  return out;
}

std::vector<SchemeReport> evaluate_all_schemes(
    const ScenarioConfig& scenario, const EvaluateOptions& options) {
  std::vector<SchemeReport> reports;
  reports.reserve(4);
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
        fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
    reports.push_back(evaluate_scheme(scenario, scheme, options));
  }
  return reports;
}

}  // namespace btmf::core
