#include "btmf/core/experiments.h"

#include <string>
#include <vector>

#include "btmf/core/evaluate.h"
#include "btmf/fluid/mfcd.h"
#include "btmf/fluid/single_torrent.h"
#include "btmf/parallel/parallel_for.h"
#include "btmf/util/strings.h"

namespace btmf::core {

Fig2Point fig2_point(const ScenarioConfig& base, double p) {
  ScenarioConfig scenario = base;
  scenario.correlation = p;
  return Fig2Point{
      evaluate_scheme(scenario, fluid::SchemeKind::kMtcd).avg_online_per_file,
      evaluate_scheme(scenario, fluid::SchemeKind::kMtsd)
          .avg_online_per_file};
}

Fig3Point fig3_point(const ScenarioConfig& base, double p) {
  ScenarioConfig scenario = base;
  scenario.correlation = p;
  // The paper plots the closed-form curves T_i/i = A + 1/(i gamma) and
  // D_i/i = A over ALL classes, including classes whose population
  // vanishes at the given p (e.g. everything but class K at p = 1), so
  // the figure uses the per-file factor A directly rather than the
  // population-conditional per-class metrics.
  Fig3Point point;
  point.mtcd_factor_a =
      p == 0.0
          ? fluid::single_torrent_download_time(scenario.fluid)
          : fluid::mfcd_download_time_per_file(scenario.fluid,
                                               scenario.correlation_model());
  const SchemeReport mtsd = evaluate_scheme(scenario, fluid::SchemeKind::kMtsd);
  point.mtsd_online_per_file = mtsd.per_class.online_per_file;
  point.mtsd_download_per_file = mtsd.per_class.download_per_file;
  return point;
}

util::Table fig2_table(const ScenarioConfig& base,
                       std::span<const double> p_values) {
  util::Table table({"p", "MTCD online/file", "MTSD online/file",
                     "MTCD/MTSD"});
  for (const double p : p_values) {
    const Fig2Point point = fig2_point(base, p);
    table.add_row({p, point.mtcd_online_per_file, point.mtsd_online_per_file,
                   point.mtcd_online_per_file / point.mtsd_online_per_file});
  }
  return table;
}

util::Table fig3_table(const ScenarioConfig& base,
                       std::span<const double> p_values) {
  util::Table table({"p", "class", "MTCD online/file", "MTSD online/file",
                     "MTCD dl/file", "MTSD dl/file"});
  for (const double p : p_values) {
    const Fig3Point point = fig3_point(base, p);
    for (unsigned i = 1; i <= base.num_files; ++i) {
      const double mtcd_online =
          point.mtcd_factor_a + 1.0 / (i * base.fluid.gamma);
      table.add_row({p, static_cast<double>(i), mtcd_online,
                     point.mtsd_online_per_file[i - 1], point.mtcd_factor_a,
                     point.mtsd_download_per_file[i - 1]});
    }
  }
  return table;
}

util::Table fig4a_table(const ScenarioConfig& base,
                        std::span<const double> p_values,
                        std::span<const double> rho_values) {
  std::vector<std::string> headers{"p"};
  for (const double rho : rho_values) {
    headers.push_back("rho=" + util::format_double(rho, 3));
  }
  util::Table table(std::move(headers));

  // One independent CMFSD steady-state solve per (p, rho) cell.
  const std::size_t np = p_values.size();
  const std::size_t nr = rho_values.size();
  std::vector<double> cells(np * nr, 0.0);
  parallel::parallel_for(0, np * nr, [&](std::size_t idx) {
    const std::size_t pi = idx / nr;
    const std::size_t ri = idx % nr;
    ScenarioConfig scenario = base;
    scenario.correlation = p_values[pi];
    EvaluateOptions options;
    options.rho = rho_values[ri];
    cells[idx] =
        evaluate_scheme(scenario, fluid::SchemeKind::kCmfsd, options)
            .avg_online_per_file;
  });

  for (std::size_t pi = 0; pi < np; ++pi) {
    std::vector<util::Cell> row{p_values[pi]};
    for (std::size_t ri = 0; ri < nr; ++ri) {
      row.emplace_back(cells[pi * nr + ri]);
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table fig4bc_table(const ScenarioConfig& base, double p,
                         std::span<const double> rho_values) {
  ScenarioConfig scenario = base;
  scenario.correlation = p;

  std::vector<std::string> headers{"class"};
  std::vector<SchemeReport> reports;
  for (const double rho : rho_values) {
    EvaluateOptions options;
    options.rho = rho;
    reports.push_back(
        evaluate_scheme(scenario, fluid::SchemeKind::kCmfsd, options));
    const std::string tag = "CMFSD rho=" + util::format_double(rho, 3);
    headers.push_back(tag + " online/file");
    headers.push_back(tag + " dl/file");
  }
  reports.push_back(evaluate_scheme(scenario, fluid::SchemeKind::kMfcd));
  headers.push_back("MFCD online/file");
  headers.push_back("MFCD dl/file");

  util::Table table(std::move(headers));
  for (unsigned i = 1; i <= base.num_files; ++i) {
    std::vector<util::Cell> row{static_cast<double>(i)};
    for (const SchemeReport& report : reports) {
      row.emplace_back(report.per_class.online_per_file[i - 1]);
      row.emplace_back(report.per_class.download_per_file[i - 1]);
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::Table validation_table(const ScenarioConfig& base,
                             std::span<const double> p_values) {
  util::Table table({"check", "p", "expected", "measured", "abs diff"});

  // (a) K = 1 degeneracy: with one file every scheme must reproduce the
  // Qiu–Srikant online time T + 1/gamma (Sec. 3.3).
  {
    ScenarioConfig single = base;
    single.num_files = 1;
    single.correlation = 1.0;
    const double expected =
        fluid::single_torrent_download_time(single.fluid) +
        1.0 / single.fluid.gamma;
    for (const fluid::SchemeKind scheme :
         {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
          fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
      const double measured =
          evaluate_scheme(single, scheme).avg_online_per_file;
      table.add_row({"K=1 degenerates to Qiu-Srikant, " +
                         std::string(fluid::to_string(scheme)),
                     1.0, expected, measured,
                     std::abs(measured - expected)});
    }
  }

  // (b) CMFSD(rho = 1) == MFCD per-file download time for every p.
  for (const double p : p_values) {
    ScenarioConfig scenario = base;
    scenario.correlation = p;
    EvaluateOptions options;
    options.rho = 1.0;
    const double cmfsd =
        evaluate_scheme(scenario, fluid::SchemeKind::kCmfsd, options)
            .avg_download_per_file;
    const double mfcd =
        fluid::mfcd_download_time_per_file(scenario.fluid,
                                           scenario.correlation_model());
    table.add_row({"CMFSD(rho=1) == MFCD dl/file", p, mfcd, cmfsd,
                   std::abs(cmfsd - mfcd)});
  }
  return table;
}

}  // namespace btmf::core
