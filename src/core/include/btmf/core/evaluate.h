// One-call fluid evaluation of any downloading scheme on a scenario.
//
// This is the primary public API: pick a scenario (K, p, lambda0, fluid
// parameters), pick a scheme, get back per-class and system-average
// online/download times at the fluid steady state.
#pragma once

#include <string>
#include <vector>

#include "btmf/core/scenario.h"
#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/metrics.h"
#include "btmf/fluid/schemes.h"
#include "btmf/math/equilibrium.h"

namespace btmf::core {

struct EvaluateOptions {
  /// CMFSD bandwidth-allocation ratio (ignored by the other schemes).
  double rho = 0.0;
  /// Optional per-class rho for CMFSD (overrides `rho` when non-empty);
  /// used for Adapt / cheater analyses.
  std::vector<double> rho_per_class;
  /// Steady-state solver settings for models without a closed form.
  math::EquilibriumOptions solver =
      fluid::CmfsdModel::default_solve_options();
};

struct SchemeReport {
  fluid::SchemeKind scheme{};
  double correlation = 0.0;
  double rho = 0.0;  ///< NaN for schemes without a rho knob

  double avg_online_per_file = 0.0;    ///< the paper's headline metric
  double avg_download_per_file = 0.0;
  double avg_online_per_user = 0.0;

  fluid::PerClassMetrics per_class;
  std::vector<double> class_entry_rates;  ///< system rates L_i used as weights
};

/// Evaluates `scheme` on `scenario` at the fluid steady state. A thin
/// wrapper over the "fluid-equilibrium" backend of btmf::model (which is
/// where the steady-state logic lives); kept as the convenient
/// scheme-by-scheme entry point.
///
/// p = 0 edge cases: MTSD is rate-independent and MTCD/MFCD converge to
/// the single-torrent limit (per-file factor A -> T), which is returned
/// analytically; CMFSD has no peers at p = 0 and throws btmf::ConfigError.
SchemeReport evaluate_scheme(const ScenarioConfig& scenario,
                             fluid::SchemeKind scheme,
                             const EvaluateOptions& options = {});

/// Convenience: evaluate all four schemes (CMFSD at options.rho).
/// Scheme/scenario pairs the backend declares unsupported — CMFSD at
/// p = 0 — are skipped (3 reports instead of 4), not errors; genuine
/// failures still throw.
std::vector<SchemeReport> evaluate_all_schemes(
    const ScenarioConfig& scenario, const EvaluateOptions& options = {});

// The old fingerprint(ScenarioConfig) / fingerprint(EvaluateOptions) pair
// is gone: build a model::ScenarioSpec and use its canonical
// ScenarioSpec::fingerprint(), which covers every evaluator knob.

}  // namespace btmf::core
