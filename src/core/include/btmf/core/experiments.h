// Generators for the paper's evaluation figures (Sec. 4.2).
//
// Each function returns the figure's data as a util::Table whose rows and
// columns mirror the series the paper plots, so the benches can print a
// directly comparable table and save CSV for replotting. Tests assert on
// the same tables.
#pragma once

#include <span>
#include <vector>

#include "btmf/core/scenario.h"
#include "btmf/util/table.h"

namespace btmf::core {

/// One Fig. 2 sample: both schemes' headline metric at one correlation.
/// The unit of work the sweep engine computes (and caches) per grid
/// point; fig2_table assembles rows from these.
struct Fig2Point {
  double mtcd_online_per_file = 0.0;
  double mtsd_online_per_file = 0.0;
};
Fig2Point fig2_point(const ScenarioConfig& base, double p);

/// One Fig. 3 sample at correlation p: the MTCD closed-form per-file
/// factor A (the MTCD curves are online = A + 1/(i gamma), download = A
/// for every class i, including classes whose population vanishes) and
/// the MTSD per-class per-file metrics.
struct Fig3Point {
  double mtcd_factor_a = 0.0;
  std::vector<double> mtsd_online_per_file;    ///< index 0 = class 1
  std::vector<double> mtsd_download_per_file;
};
Fig3Point fig3_point(const ScenarioConfig& base, double p);

/// Fig. 2 — average online time per file vs file correlation p under MTCD
/// and MTSD. Columns: p, MTCD, MTSD, MTCD/MTSD ratio.
util::Table fig2_table(const ScenarioConfig& base,
                       std::span<const double> p_values);

/// Fig. 3 — online and download time per file for every class under MTCD
/// and MTSD at the given correlations (the paper uses p = 0.1 and 1.0).
/// Columns: p, class, MTCD online/file, MTSD online/file, MTCD dl/file,
/// MTSD dl/file.
util::Table fig3_table(const ScenarioConfig& base,
                       std::span<const double> p_values);

/// Fig. 4(a) — average online time per file under CMFSD over the
/// (p, rho) grid. One row per p; one column per rho. Cells are computed
/// in parallel on the global thread pool.
util::Table fig4a_table(const ScenarioConfig& base,
                        std::span<const double> p_values,
                        std::span<const double> rho_values);

/// Fig. 4(b)/(c) — per-class online and download time per file under
/// CMFSD at each rho in `rho_values` plus MFCD, at correlation p.
/// Columns: class, then online/file and dl/file per scheme variant.
util::Table fig4bc_table(const ScenarioConfig& base, double p,
                         std::span<const double> rho_values);

/// Model validation table: (a) the K = 1 degenerate case of MTCD/MTSD
/// reduces to the Qiu–Srikant single-torrent result (Sec. 3.3's
/// correctness argument); (b) CMFSD(rho = 1) reproduces the MFCD per-file
/// download time at every p (the identity proved in cmfsd.h).
util::Table validation_table(const ScenarioConfig& base,
                             std::span<const double> p_values);

}  // namespace btmf::core
