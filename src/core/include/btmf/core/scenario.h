// Scenario description shared by the fluid evaluators, the simulator
// drivers, the benches and the examples.
#pragma once

#include "btmf/fluid/correlation.h"
#include "btmf/fluid/params.h"

namespace btmf::core {

/// A server-torrent system: K interest-correlated files, binomial request
/// model with correlation p and indexing-server visit rate lambda0, and
/// the fluid parameters (mu, eta, gamma). Defaults are the paper's
/// Section 4 evaluation constants.
struct ScenarioConfig {
  unsigned num_files = fluid::kPaperNumFiles;  ///< K
  double correlation = 0.5;                    ///< p
  double visit_rate = 1.0;                     ///< lambda0
  fluid::FluidParams fluid = fluid::kPaperParams;

  /// Throws btmf::ConfigError on out-of-range values.
  void validate() const;

  [[nodiscard]] fluid::CorrelationModel correlation_model() const {
    return fluid::CorrelationModel(num_files, correlation, visit_rate);
  }
};

}  // namespace btmf::core
