// Library version, for downstream feature checks.
#pragma once

namespace btmf {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "major.minor.patch"
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace btmf
