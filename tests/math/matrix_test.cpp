#include "btmf/math/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "btmf/util/error.h"

namespace btmf::math {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, ZeroDimensionThrows) {
  EXPECT_THROW((void)Matrix(0, 3), ConfigError);
  EXPECT_THROW((void)Matrix(3, 0), ConfigError);
}

TEST(MatrixTest, IdentityMultiplyIsNoOp) {
  const Matrix eye = Matrix::identity(4);
  const std::vector<double> x{1.0, -2.0, 3.5, 0.25};
  const std::vector<double> y = eye.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(MatrixTest, MatrixVectorKnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1;  a(0, 1) = 2;  a(0, 2) = 3;
  a(1, 0) = 4;  a(1, 1) = 5;  a(1, 2) = 6;
  const std::vector<double> y = a.multiply(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, MatrixVectorSizeMismatchThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW((void)a.multiply(std::vector<double>{1.0, 2.0}), ConfigError);
}

TEST(MatrixTest, MatrixMatrixKnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1;  a(0, 1) = 2;
  a(1, 0) = 3;  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 0;  b(0, 1) = 1;
  b(1, 0) = 1;  b(1, 1) = 0;
  const Matrix c = a.multiply(b);  // column swap
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(LuTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3
  Matrix a(2, 2);
  a(0, 0) = 2;  a(0, 1) = 1;
  a(1, 0) = 1;  a(1, 1) = 3;
  const LuDecomposition lu(a);
  const std::vector<double> x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 0;  a(0, 2) = 0;
  a(1, 0) = 0;  a(1, 1) = 3;  a(1, 2) = 0;
  a(2, 0) = 0;  a(2, 1) = 0;  a(2, 2) = 4;
  EXPECT_NEAR(LuDecomposition(a).determinant(), 24.0, 1e-12);
}

TEST(LuTest, DeterminantSignTracksPermutation) {
  // A row swap of the identity has determinant -1.
  Matrix a(2, 2);
  a(0, 0) = 0;  a(0, 1) = 1;
  a(1, 0) = 1;  a(1, 1) = 0;
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-12);
}

TEST(LuTest, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;  a(0, 1) = 2;
  a(1, 0) = 2;  a(1, 1) = 4;  // rank 1
  EXPECT_THROW(LuDecomposition{a}, SolverError);
}

TEST(LuTest, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, ConfigError);
}

TEST(LuTest, RandomRoundTrip) {
  // Solve A x = b for random well-conditioned A and check the residual.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 8);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
      a(r, r) += 4.0;  // diagonal dominance keeps it well-conditioned
    }
    std::vector<double> b(n);
    for (double& v : b) v = dist(rng);
    const std::vector<double> x = LuDecomposition(a).solve(b);
    const std::vector<double> ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
  }
}

TEST(MatrixTest, MaxAbs) {
  Matrix a(2, 2);
  a(0, 0) = -5.0;
  a(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

}  // namespace
}  // namespace btmf::math
