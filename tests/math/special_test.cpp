#include "btmf/math/special.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "btmf/util/error.h"

namespace btmf::math {
namespace {

TEST(BinomialCoefficientTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(20, 10), 184756.0);
}

TEST(BinomialCoefficientTest, PascalIdentity) {
  for (unsigned n = 2; n <= 30; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      EXPECT_DOUBLE_EQ(binomial_coefficient(n, k),
                       binomial_coefficient(n - 1, k - 1) +
                           binomial_coefficient(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialCoefficientTest, KGreaterThanNThrows) {
  EXPECT_THROW((void)binomial_coefficient(3, 4), ConfigError);
}

TEST(BinomialPmfTest, SumsToOne) {
  for (const double p : {0.0, 0.1, 0.35, 0.5, 0.9, 1.0}) {
    const auto pmf = binomial_pmf_vector(10, p);
    const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(BinomialPmfTest, DegenerateEndpoints) {
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 7, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(7, 2, 1.0), 0.0);
}

TEST(BinomialPmfTest, MatchesDirectFormula) {
  // n = 10, k = 4, p = 0.3: C(10,4) 0.3^4 0.7^6.
  const double expected = 210.0 * std::pow(0.3, 4) * std::pow(0.7, 6);
  EXPECT_NEAR(binomial_pmf(10, 4, 0.3), expected, 1e-15);
}

TEST(BinomialPmfTest, MeanIsNp) {
  const unsigned n = 12;
  const double p = 0.37;
  const auto pmf = binomial_pmf_vector(n, p);
  double mean = 0.0;
  for (unsigned k = 0; k <= n; ++k) mean += k * pmf[k];
  EXPECT_NEAR(mean, n * p, 1e-12);
}

TEST(BinomialPmfTest, InvalidPThrows) {
  EXPECT_THROW((void)binomial_pmf(5, 2, -0.1), ConfigError);
  EXPECT_THROW((void)binomial_pmf(5, 2, 1.1), ConfigError);
}

TEST(LogBinomialTest, ConsistentWithLinearScale) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(30, 15)),
              binomial_coefficient(30, 15), 1e-3);
}

}  // namespace
}  // namespace btmf::math
