#include "btmf/math/vec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace btmf::math {
namespace {

TEST(VecTest, AxpyAccumulates) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(VecTest, ScaleInPlace) {
  std::vector<double> x{1.0, -2.0};
  scale(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(VecTest, DotAndNorms) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
  const std::vector<double> neg{-7.0, 2.0};
  EXPECT_DOUBLE_EQ(norm_inf(neg), 7.0);
}

TEST(VecTest, WrmsNormWeightsComponents) {
  // err = 1e-6 on a component of size 1 with rtol 1e-6 -> ratio ~ 1.
  const std::vector<double> err{1e-6};
  const std::vector<double> y{1.0};
  const double n = wrms_norm(err, y, /*atol=*/1e-12, /*rtol=*/1e-6);
  EXPECT_NEAR(n, 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(
      wrms_norm(std::vector<double>{}, std::vector<double>{}, 1.0, 1.0),
      0.0);
}

TEST(VecTest, WrmsNormIsRms) {
  // Two components with identical scaled error e: the norm is e, not
  // e*sqrt(2) (root *mean* square).
  const std::vector<double> err{2e-6, 2e-6};
  const std::vector<double> y{1.0, 1.0};
  const double n = wrms_norm(err, y, 1e-12, 1e-6);
  EXPECT_NEAR(n, 2.0, 1e-3);
}

TEST(VecTest, AllFiniteDetectsNanAndInf) {
  EXPECT_TRUE(all_finite(std::vector<double>{1.0, -2.0}));
  EXPECT_FALSE(all_finite(std::vector<double>{
      1.0, std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_FALSE(all_finite(std::vector<double>{
      std::numeric_limits<double>::infinity()}));
}

TEST(VecTest, ClampNonNegative) {
  std::vector<double> x{-1e-15, 0.5, -3.0};
  clamp_nonnegative(x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
}

}  // namespace
}  // namespace btmf::math
