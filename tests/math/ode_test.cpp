#include "btmf/math/ode.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "btmf/util/error.h"

namespace btmf::math {
namespace {

// y' = -y, y(0) = 1 -> y(t) = e^{-t}.
const OdeRhs kDecay = [](double, std::span<const double> y,
                         std::span<double> d) { d[0] = -y[0]; };

// Harmonic oscillator y'' = -y as a 2-system; energy is conserved.
const OdeRhs kOscillator = [](double, std::span<const double> y,
                              std::span<double> d) {
  d[0] = y[1];
  d[1] = -y[0];
};

double decay_error(FixedStepMethod method, double dt) {
  const std::vector<double> y =
      integrate_fixed(kDecay, {1.0}, 0.0, 1.0, dt, method);
  return std::abs(y[0] - std::exp(-1.0));
}

TEST(FixedStepTest, EulerFirstOrderConvergence) {
  const double e1 = decay_error(FixedStepMethod::kEuler, 0.01);
  const double e2 = decay_error(FixedStepMethod::kEuler, 0.005);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 1.0, 0.1);
}

TEST(FixedStepTest, HeunSecondOrderConvergence) {
  const double e1 = decay_error(FixedStepMethod::kHeun, 0.02);
  const double e2 = decay_error(FixedStepMethod::kHeun, 0.01);
  EXPECT_NEAR(std::log2(e1 / e2), 2.0, 0.1);
}

TEST(FixedStepTest, Rk4FourthOrderConvergence) {
  const double e1 = decay_error(FixedStepMethod::kRk4, 0.1);
  const double e2 = decay_error(FixedStepMethod::kRk4, 0.05);
  EXPECT_NEAR(std::log2(e1 / e2), 4.0, 0.2);
}

TEST(FixedStepTest, FinalStepLandsExactlyOnT1) {
  // dt does not divide the interval; the final (shortened) step must land
  // on t1 = 1 rather than overshooting to 1.2.
  const std::vector<double> y =
      integrate_fixed(kDecay, {1.0}, 0.0, 1.0, 0.3, FixedStepMethod::kRk4);
  // RK4 truncation error at dt = 0.3 is ~3e-5; an overshoot to t = 1.2
  // would be off by ~6e-2.
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-4);
}

TEST(FixedStepTest, ObserverSeesMonotoneTimes) {
  double last_t = 0.0;
  std::size_t calls = 0;
  integrate_fixed(kDecay, {1.0}, 0.0, 1.0, 0.25, FixedStepMethod::kEuler,
                  [&](double t, std::span<const double>) {
                    EXPECT_GT(t, last_t);
                    last_t = t;
                    ++calls;
                  });
  EXPECT_EQ(calls, 4u);
  EXPECT_DOUBLE_EQ(last_t, 1.0);
}

TEST(FixedStepTest, InvalidArgumentsThrow) {
  EXPECT_THROW(
      integrate_fixed(kDecay, {1.0}, 0.0, 1.0, 0.0, FixedStepMethod::kRk4),
      ConfigError);
  EXPECT_THROW(
      integrate_fixed(kDecay, {1.0}, 1.0, 0.0, 0.1, FixedStepMethod::kRk4),
      ConfigError);
}

TEST(Dopri5Test, MatchesExponentialDecay) {
  AdaptiveOptions options;
  options.rtol = 1e-10;
  options.atol = 1e-12;
  const AdaptiveResult r = integrate_dopri5(kDecay, {1.0}, 0.0, 5.0, options);
  EXPECT_NEAR(r.y[0], std::exp(-5.0), 1e-9);
  EXPECT_DOUBLE_EQ(r.t, 5.0);
  EXPECT_GT(r.accepted_steps, 0u);
}

TEST(Dopri5Test, OscillatorConservesEnergyToTolerance) {
  AdaptiveOptions options;
  options.rtol = 1e-10;
  options.atol = 1e-12;
  const AdaptiveResult r =
      integrate_dopri5(kOscillator, {1.0, 0.0}, 0.0, 20.0, options);
  EXPECT_NEAR(r.y[0], std::cos(20.0), 1e-7);
  EXPECT_NEAR(r.y[1], -std::sin(20.0), 1e-7);
  const double energy = r.y[0] * r.y[0] + r.y[1] * r.y[1];
  EXPECT_NEAR(energy, 1.0, 1e-8);
}

TEST(Dopri5Test, TighterToleranceGivesSmallerError) {
  AdaptiveOptions loose;
  loose.rtol = 1e-4;
  loose.atol = 1e-6;
  AdaptiveOptions tight;
  tight.rtol = 1e-10;
  tight.atol = 1e-12;
  const double exact = std::exp(-3.0);
  const double e_loose =
      std::abs(integrate_dopri5(kDecay, {1.0}, 0.0, 3.0, loose).y[0] - exact);
  const double e_tight =
      std::abs(integrate_dopri5(kDecay, {1.0}, 0.0, 3.0, tight).y[0] - exact);
  EXPECT_LT(e_tight, e_loose);
}

TEST(Dopri5Test, TighterToleranceTakesMoreSteps) {
  AdaptiveOptions loose;
  loose.rtol = 1e-4;
  AdaptiveOptions tight;
  tight.rtol = 1e-11;
  tight.atol = 1e-13;
  const auto r_loose = integrate_dopri5(kOscillator, {1.0, 0.0}, 0.0, 10.0,
                                        loose);
  const auto r_tight = integrate_dopri5(kOscillator, {1.0, 0.0}, 0.0, 10.0,
                                        tight);
  EXPECT_GT(r_tight.accepted_steps, r_loose.accepted_steps);
}

TEST(Dopri5Test, ZeroLengthIntervalIsIdentity) {
  const AdaptiveResult r = integrate_dopri5(kDecay, {3.0}, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.y[0], 3.0);
  EXPECT_EQ(r.accepted_steps, 0u);
}

TEST(Dopri5Test, MaxStepBudgetThrows) {
  AdaptiveOptions options;
  options.max_steps = 3;
  options.rtol = 1e-12;
  options.atol = 1e-14;
  EXPECT_THROW((void)integrate_dopri5(kOscillator, {1.0, 0.0}, 0.0, 100.0, options),
               SolverError);
}

TEST(Dopri5Test, ClampNonNegativeKeepsPopulationsAtZero) {
  // y' = -1 would cross zero; clamping pins the state at 0.
  const OdeRhs rhs = [](double, std::span<const double>,
                        std::span<double> d) { d[0] = -1.0; };
  AdaptiveOptions options;
  options.clamp_nonnegative = true;
  const AdaptiveResult r = integrate_dopri5(rhs, {0.5}, 0.0, 2.0, options);
  EXPECT_GE(r.y[0], 0.0);
}

TEST(Dopri5Test, NonFiniteRhsRejectedThenThrows) {
  // A right-hand side that explodes: the controller shrinks dt until the
  // underflow guard reports failure instead of looping forever.
  const OdeRhs rhs = [](double t, std::span<const double> y,
                        std::span<double> d) {
    d[0] = (t > 0.5) ? y[0] / (1.0 - t) / (1.0 - t) * 1e300 : y[0];
  };
  EXPECT_THROW((void)integrate_dopri5(rhs, {1.0}, 0.0, 2.0), SolverError);
}

TEST(Dopri5Test, InvalidTolerancesThrow) {
  AdaptiveOptions options;
  options.rtol = 0.0;
  EXPECT_THROW((void)integrate_dopri5(kDecay, {1.0}, 0.0, 1.0, options),
               ConfigError);
}

TEST(Dopri5Test, ObserverOnlySeesAcceptedSteps) {
  std::size_t calls = 0;
  double last_t = 0.0;
  const AdaptiveResult r = integrate_dopri5(
      kDecay, {1.0}, 0.0, 2.0, {},
      [&](double t, std::span<const double>) {
        EXPECT_GT(t, last_t);
        last_t = t;
        ++calls;
      });
  EXPECT_EQ(calls, r.accepted_steps);
  EXPECT_DOUBLE_EQ(last_t, 2.0);
}

}  // namespace
}  // namespace btmf::math
