#include "btmf/math/roots.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/util/error.h"

namespace btmf::math {
namespace {

TEST(BrentTest, FindsQuadraticRoot) {
  const double r = brent_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(BrentTest, FindsTranscendentalRoot) {
  const double r =
      brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-10);
}

TEST(BrentTest, RootAtBracketEndReturnsImmediately) {
  const double r = brent_root([](double x) { return x; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(BrentTest, NoBracketThrows) {
  EXPECT_THROW(
      brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      SolverError);
}

TEST(BrentTest, NanAtBracketThrows) {
  EXPECT_THROW((void)brent_root([](double) { return std::nan(""); }, 0.0, 1.0),
               SolverError);
}

TEST(BrentTest, InvertedBracketThrows) {
  EXPECT_THROW((void)brent_root([](double x) { return x; }, 1.0, -1.0),
               ConfigError);
}

TEST(BrentTest, SteepFunctionStillConverges) {
  const double r = brent_root(
      [](double x) { return std::exp(50.0 * x) - 1.0; }, -1.0, 1.0);
  EXPECT_NEAR(r, 0.0, 1e-9);
}

TEST(BisectTest, AgreesWithBrent) {
  const auto f = [](double x) { return x * x * x - x - 2.0; };
  const double brent = brent_root(f, 1.0, 2.0);
  const double bisect = bisect_root(f, 1.0, 2.0);
  EXPECT_NEAR(brent, bisect, 1e-9);
  EXPECT_NEAR(f(brent), 0.0, 1e-10);
}

TEST(BisectTest, NoBracketThrows) {
  EXPECT_THROW((void)bisect_root([](double) { return 1.0; }, 0.0, 1.0),
               SolverError);
}

}  // namespace
}  // namespace btmf::math
