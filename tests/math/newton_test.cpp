#include "btmf/math/newton.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "btmf/util/error.h"

namespace btmf::math {
namespace {

TEST(JacobianTest, LinearSystemJacobianIsTheMatrix) {
  // F(x) = A x with known A; the numerical Jacobian must recover A.
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = 2.0 * x[0] + 3.0 * x[1];
    out[1] = -1.0 * x[0] + 4.0 * x[1];
  };
  const std::vector<double> x{0.7, -0.3};
  const Matrix jac = numerical_jacobian(f, x);
  EXPECT_NEAR(jac(0, 0), 2.0, 1e-6);
  EXPECT_NEAR(jac(0, 1), 3.0, 1e-6);
  EXPECT_NEAR(jac(1, 0), -1.0, 1e-6);
  EXPECT_NEAR(jac(1, 1), 4.0, 1e-6);
}

TEST(NewtonTest, SolvesScalarQuadratic) {
  // x^2 - 4 = 0 from x0 = 3 -> x = 2.
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = x[0] * x[0] - 4.0;
  };
  const NewtonResult r = newton_solve(f, {3.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
}

TEST(NewtonTest, SolvesCoupledNonlinearSystem) {
  // x^2 + y^2 = 5, x y = 2 -> (2, 1) from a nearby start.
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
    out[1] = x[0] * x[1] - 2.0;
  };
  const NewtonResult r = newton_solve(f, {2.5, 0.5});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(NewtonTest, QuadraticConvergenceTakesFewIterations) {
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = std::exp(x[0]) - 2.0;
  };
  const NewtonResult r = newton_solve(f, {1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], std::log(2.0), 1e-10);
  EXPECT_LE(r.iterations, 8u);
}

TEST(NewtonTest, DampingRescuesOvershoot) {
  // atan has a tiny derivative far out; a full Newton step from x0 = 5
  // overshoots wildly and diverges without damping.
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = std::atan(x[0]);
  };
  const NewtonResult r = newton_solve(f, {5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.0, 1e-8);
}

TEST(NewtonTest, ProjectionKeepsIterateInDomain) {
  // Root of x^2 - 2 with iterates projected into x >= 0: finds +sqrt(2).
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = x[0] * x[0] - 2.0;
  };
  NewtonOptions options;
  options.project = [](std::span<double> x) {
    for (double& v : x) v = std::max(v, 0.0);
  };
  const NewtonResult r = newton_solve(f, {0.5}, options);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], std::sqrt(2.0), 1e-8);
}

TEST(NewtonTest, AlreadyAtRootConvergesImmediately) {
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = x[0] - 1.0;
  };
  const NewtonResult r = newton_solve(f, {1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(NewtonTest, SingularJacobianThrows) {
  // A rank-1 linear system: the Jacobian is singular everywhere and the
  // start is not a root, so the LU factorisation must fail loudly.
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = x[0] + x[1];
    out[1] = x[0] + x[1];
  };
  EXPECT_THROW((void)newton_solve(f, {1.0, 0.0}), SolverError);
}

TEST(NewtonTest, NoRootReportsNonConvergence) {
  // x^2 + 1 has no real root; Newton must stall and say so, not throw.
  const VectorField f = [](std::span<const double> x, std::span<double> out) {
    out[0] = x[0] * x[0] + 1.0;
  };
  const NewtonResult r = newton_solve(f, {3.0});
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.residual_inf, 0.5);
}

TEST(NewtonTest, EmptyStateThrows) {
  const VectorField f = [](std::span<const double>, std::span<double>) {};
  EXPECT_THROW((void)newton_solve(f, {}), ConfigError);
}

}  // namespace
}  // namespace btmf::math
