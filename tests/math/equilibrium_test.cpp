#include "btmf/math/equilibrium.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "btmf/util/error.h"

namespace btmf::math {
namespace {

TEST(EquilibriumTest, LinearRelaxationFindsFixedPoint) {
  // y' = 1 - y has the unique stable equilibrium y* = 1.
  const OdeRhs rhs = [](double, std::span<const double> y,
                        std::span<double> d) { d[0] = 1.0 - y[0]; };
  const EquilibriumResult r = find_equilibrium(rhs, {0.0});
  EXPECT_NEAR(r.y[0], 1.0, 1e-8);
  EXPECT_LE(r.residual_inf, 1e-9);
}

TEST(EquilibriumTest, CoupledLinearSystem) {
  // y1' = 2 - y1, y2' = y1 - 0.5 y2  ->  y* = (2, 4).
  const OdeRhs rhs = [](double, std::span<const double> y,
                        std::span<double> d) {
    d[0] = 2.0 - y[0];
    d[1] = y[0] - 0.5 * y[1];
  };
  const EquilibriumResult r = find_equilibrium(rhs, {0.0, 0.0});
  EXPECT_NEAR(r.y[0], 2.0, 1e-7);
  EXPECT_NEAR(r.y[1], 4.0, 1e-7);
}

TEST(EquilibriumTest, NonlinearLogisticEquilibrium) {
  // Logistic growth y' = y (1 - y/10) from y0 = 1 -> carrying capacity 10.
  const OdeRhs rhs = [](double, std::span<const double> y,
                        std::span<double> d) {
    d[0] = y[0] * (1.0 - y[0] / 10.0);
  };
  EquilibriumOptions options;
  options.chunk_time = 50.0;
  const EquilibriumResult r = find_equilibrium(rhs, {1.0}, options);
  EXPECT_NEAR(r.y[0], 10.0, 1e-6);
}

TEST(EquilibriumTest, NewtonPolishTightensResidual) {
  const OdeRhs rhs = [](double, std::span<const double> y,
                        std::span<double> d) { d[0] = 3.0 - 0.1 * y[0]; };
  EquilibriumOptions no_polish;
  no_polish.polish_with_newton = false;
  no_polish.residual_tol = 1e-6;
  EquilibriumOptions polish = no_polish;
  polish.polish_with_newton = true;
  const double r_raw = find_equilibrium(rhs, {0.0}, no_polish).residual_inf;
  const double r_polished = find_equilibrium(rhs, {0.0}, polish).residual_inf;
  EXPECT_LE(r_polished, r_raw);
  EXPECT_LE(r_polished, 1e-9);
}

TEST(EquilibriumTest, DivergentSystemThrows) {
  // y' = 1 never reaches a fixed point.
  const OdeRhs rhs = [](double, std::span<const double>,
                        std::span<double> d) { d[0] = 1.0; };
  EquilibriumOptions options;
  options.max_chunks = 4;
  options.chunk_time = 10.0;
  EXPECT_THROW((void)find_equilibrium(rhs, {0.0}, options), SolverError);
}

TEST(EquilibriumTest, AlreadyAtEquilibriumReturnsImmediately) {
  const OdeRhs rhs = [](double, std::span<const double> y,
                        std::span<double> d) { d[0] = 1.0 - y[0]; };
  const EquilibriumResult r = find_equilibrium(rhs, {1.0});
  EXPECT_EQ(r.chunks, 0u);
  EXPECT_NEAR(r.y[0], 1.0, 1e-12);
}

TEST(EquilibriumTest, EmptyStateThrows) {
  const OdeRhs rhs = [](double, std::span<const double>,
                        std::span<double>) {};
  EXPECT_THROW((void)find_equilibrium(rhs, {}), ConfigError);
}

TEST(EquilibriumTest, ClampKeepsPopulationsNonNegative) {
  // The flow briefly dips the transient below zero without clamping.
  const OdeRhs rhs = [](double, std::span<const double> y,
                        std::span<double> d) {
    d[0] = -10.0 * y[0] + 0.1;
    d[1] = y[0] - y[1];
  };
  EquilibriumOptions options;
  options.clamp_nonnegative = true;
  const EquilibriumResult r = find_equilibrium(rhs, {5.0, 0.0}, options);
  EXPECT_GE(r.y[0], 0.0);
  EXPECT_NEAR(r.y[0], 0.01, 1e-8);
  EXPECT_NEAR(r.y[1], 0.01, 1e-8);
}

}  // namespace
}  // namespace btmf::math
