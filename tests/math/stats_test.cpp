#include "btmf/math/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace btmf::math {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStatsTest, CiHalfwidthScalesWithZ) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 10));
  EXPECT_NEAR(s.ci_halfwidth(1.96) / s.ci_halfwidth(1.0), 1.96, 1e-12);
}

TEST(RunningStatsTest, MergeMatchesPooledComputation) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> dist(5.0, 2.0);
  RunningStats a, b, pooled;
  for (int i = 0; i < 500; ++i) {
    const double x = dist(rng);
    (i % 3 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoOp) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  RunningStats empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  EXPECT_EQ(a.count(), 2u);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), mean_before);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Welford must not catastrophically cancel with a huge common offset.
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TimeAverageTest, WeightsByDuration) {
  TimeAverage avg;
  avg.add(10.0, 1.0);
  avg.add(0.0, 3.0);
  EXPECT_DOUBLE_EQ(avg.average(), 2.5);
  EXPECT_DOUBLE_EQ(avg.total_time(), 4.0);
}

TEST(TimeAverageTest, IgnoresNonPositiveDurations) {
  TimeAverage avg;
  avg.add(100.0, 0.0);
  avg.add(100.0, -1.0);
  EXPECT_DOUBLE_EQ(avg.average(), 0.0);
  avg.add(5.0, 2.0);
  EXPECT_DOUBLE_EQ(avg.average(), 5.0);
}

}  // namespace
}  // namespace btmf::math
