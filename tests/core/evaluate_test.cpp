#include "btmf/core/evaluate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/util/error.h"

namespace btmf::core {
namespace {

ScenarioConfig paper_scenario(double p) {
  ScenarioConfig sc;
  sc.correlation = p;
  return sc;  // K = 10, paper fluid constants, lambda0 = 1
}

TEST(EvaluateTest, MtsdIsEightyEverywhere) {
  for (const double p : {0.0, 0.3, 1.0}) {
    const SchemeReport r =
        evaluate_scheme(paper_scenario(p), fluid::SchemeKind::kMtsd);
    EXPECT_NEAR(r.avg_online_per_file, 80.0, 1e-9) << "p=" << p;
    EXPECT_NEAR(r.avg_download_per_file, 60.0, 1e-9) << "p=" << p;
  }
}

TEST(EvaluateTest, MtcdPaperNumbers) {
  // p = 1: A = 96, avg online per file = 96 + 20/10 = 98.
  const SchemeReport r =
      evaluate_scheme(paper_scenario(1.0), fluid::SchemeKind::kMtcd);
  EXPECT_NEAR(r.avg_online_per_file, 98.0, 1e-9);
  EXPECT_NEAR(r.avg_download_per_file, 96.0, 1e-9);
}

TEST(EvaluateTest, MtcdEqualsMtsdInTheZeroCorrelationLimit) {
  const SchemeReport mtcd =
      evaluate_scheme(paper_scenario(0.0), fluid::SchemeKind::kMtcd);
  const SchemeReport mtsd =
      evaluate_scheme(paper_scenario(0.0), fluid::SchemeKind::kMtsd);
  EXPECT_NEAR(mtcd.avg_online_per_file, mtsd.avg_online_per_file, 1e-9);
}

TEST(EvaluateTest, MfcdEqualsMtcd) {
  const SchemeReport mtcd =
      evaluate_scheme(paper_scenario(0.6), fluid::SchemeKind::kMtcd);
  const SchemeReport mfcd =
      evaluate_scheme(paper_scenario(0.6), fluid::SchemeKind::kMfcd);
  EXPECT_NEAR(mtcd.avg_online_per_file, mfcd.avg_online_per_file, 1e-9);
}

TEST(EvaluateTest, CmfsdUsesRhoOption) {
  EvaluateOptions generous;
  generous.rho = 0.0;
  EvaluateOptions selfish;
  selfish.rho = 1.0;
  const SchemeReport g = evaluate_scheme(paper_scenario(0.9),
                                         fluid::SchemeKind::kCmfsd, generous);
  const SchemeReport s = evaluate_scheme(paper_scenario(0.9),
                                         fluid::SchemeKind::kCmfsd, selfish);
  EXPECT_LT(g.avg_online_per_file, s.avg_online_per_file);
  EXPECT_DOUBLE_EQ(g.rho, 0.0);
  EXPECT_DOUBLE_EQ(s.rho, 1.0);
}

TEST(EvaluateTest, CmfsdAtZeroCorrelationThrows) {
  EXPECT_THROW(
      evaluate_scheme(paper_scenario(0.0), fluid::SchemeKind::kCmfsd),
      ConfigError);
}

TEST(EvaluateTest, RhoIsNaNForSchemesWithoutTheKnob) {
  const SchemeReport r =
      evaluate_scheme(paper_scenario(0.5), fluid::SchemeKind::kMtsd);
  EXPECT_TRUE(std::isnan(r.rho));
}

TEST(EvaluateTest, PerClassRhoOverridesUniform) {
  EvaluateOptions options;
  options.rho = 0.0;                          // would be generous...
  options.rho_per_class.assign(10, 1.0);      // ...but per-class wins
  const SchemeReport selfish = evaluate_scheme(
      paper_scenario(0.9), fluid::SchemeKind::kCmfsd, options);
  EvaluateOptions generous;
  generous.rho = 0.0;
  const SchemeReport g = evaluate_scheme(paper_scenario(0.9),
                                         fluid::SchemeKind::kCmfsd, generous);
  EXPECT_GT(selfish.avg_online_per_file, g.avg_online_per_file);
}

TEST(EvaluateTest, ClassEntryRatesAreReported) {
  const SchemeReport r =
      evaluate_scheme(paper_scenario(0.5), fluid::SchemeKind::kMtcd);
  ASSERT_EQ(r.class_entry_rates.size(), 10u);
  double total = 0.0;
  for (const double rate : r.class_entry_rates) total += rate;
  EXPECT_NEAR(total, 1.0 - std::pow(0.5, 10), 1e-9);
}

TEST(EvaluateTest, InvalidScenarioThrows) {
  ScenarioConfig sc = paper_scenario(0.5);
  sc.visit_rate = -1.0;
  EXPECT_THROW((void)evaluate_scheme(sc, fluid::SchemeKind::kMtsd), ConfigError);
  sc = paper_scenario(2.0);
  EXPECT_THROW((void)evaluate_scheme(sc, fluid::SchemeKind::kMtsd), ConfigError);
}

TEST(EvaluateTest, EvaluateAllReturnsFourReports) {
  const auto reports = evaluate_all_schemes(paper_scenario(0.5));
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].scheme, fluid::SchemeKind::kMtcd);
  EXPECT_EQ(reports[3].scheme, fluid::SchemeKind::kCmfsd);
}

TEST(EvaluateTest, EvaluateAllSkipsCmfsdAtZeroCorrelation) {
  // CMFSD does not exist at p = 0; the backend declares the combination
  // unsupported, so evaluate_all skips it instead of throwing.
  const auto reports = evaluate_all_schemes(paper_scenario(0.0));
  ASSERT_EQ(reports.size(), 3u);
  for (const SchemeReport& report : reports) {
    EXPECT_NE(report.scheme, fluid::SchemeKind::kCmfsd);
  }
}

TEST(EvaluateTest, AveragePerUserAtLeastPerFile) {
  // Per-user online time aggregates >= 1 file, so it dominates per-file.
  const SchemeReport r =
      evaluate_scheme(paper_scenario(0.7), fluid::SchemeKind::kMtsd);
  EXPECT_GE(r.avg_online_per_user, r.avg_online_per_file - 1e-9);
}

}  // namespace
}  // namespace btmf::core
