#include "btmf/core/experiments.h"

#include <gtest/gtest.h>

#include <vector>

#include "btmf/util/strings.h"

namespace btmf::core {
namespace {

ScenarioConfig paper_base() {
  return {};  // K = 10, paper fluid constants
}

double cell(const util::Table& t, std::size_t row, std::size_t col) {
  return util::parse_double(t.cell_text(row, col), "cell");
}

TEST(Fig2Test, ShapeMatchesPaper) {
  const std::vector<double> ps{0.0, 0.1, 0.5, 1.0};
  const util::Table t = fig2_table(paper_base(), ps);
  ASSERT_EQ(t.num_rows(), 4u);
  ASSERT_EQ(t.num_cols(), 4u);
  // MTSD column is flat at 80.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(cell(t, r, 2), 80.0, 1e-6) << "row " << r;
  }
  // MTCD equals MTSD at p = 0 and rises monotonically to 98 at p = 1.
  EXPECT_NEAR(cell(t, 0, 1), 80.0, 1e-6);
  EXPECT_NEAR(cell(t, 3, 1), 98.0, 1e-6);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_GT(cell(t, r, 1), cell(t, r - 1, 1));
  }
}

TEST(Fig3Test, PerClassStructure) {
  const std::vector<double> ps{0.1, 1.0};
  const util::Table t = fig3_table(paper_base(), ps);
  ASSERT_EQ(t.num_rows(), 20u);  // 2 correlations x 10 classes
  // Row 0: p = 0.1, class 1. MTCD online/file > MTSD's 80 at low p for
  // the single-file majority (the paper's fairness complaint).
  EXPECT_GT(cell(t, 0, 2), cell(t, 0, 3));
  // Row 9: p = 0.1, class 10: MTCD beats MTSD per file.
  EXPECT_LT(cell(t, 9, 2), cell(t, 9, 3));
  // At p = 1 (rows 10..19) only class 10 is populated but the formula
  // columns remain finite for every class; MTCD online/file at class 10
  // must be 96 + 2 = 98.
  EXPECT_NEAR(cell(t, 19, 2), 98.0, 1e-6);
  // MTSD download per file is 60 everywhere.
  for (const std::size_t r : {0ul, 5ul, 12ul, 19ul}) {
    EXPECT_NEAR(cell(t, r, 5), 60.0, 1e-6);
  }
}

TEST(Fig4aTest, SurfaceMonotoneInRhoAndBestAtZero) {
  const std::vector<double> ps{0.3, 0.9};
  const std::vector<double> rhos{0.0, 0.5, 1.0};
  const util::Table t = fig4a_table(paper_base(), ps, rhos);
  ASSERT_EQ(t.num_rows(), 2u);
  ASSERT_EQ(t.num_cols(), 4u);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_LT(cell(t, r, 1), cell(t, r, 2));
    EXPECT_LT(cell(t, r, 2), cell(t, r, 3));
  }
  // The rho = 0 advantage grows with correlation (paper Sec. 4.2.2):
  const double gain_low = cell(t, 0, 3) - cell(t, 0, 1);
  const double gain_high = cell(t, 1, 3) - cell(t, 1, 1);
  EXPECT_GT(gain_high, gain_low);
}

TEST(Fig4bcTest, UnfairnessPattern) {
  const std::vector<double> rhos{0.1, 0.9};
  // p = 0.1 (paper Fig. 4(c)): strong unfairness — class 1 much faster
  // than class 10 in download time per file under CMFSD.
  const util::Table low = fig4bc_table(paper_base(), 0.1, rhos);
  ASSERT_EQ(low.num_rows(), 10u);
  ASSERT_EQ(low.num_cols(), 7u);  // class + 2x2 CMFSD + MFCD pair
  const double dl_c1_rho09 = cell(low, 0, 4);
  const double dl_c10_rho09 = cell(low, 9, 4);
  EXPECT_LT(dl_c1_rho09, dl_c10_rho09);
  // MFCD download per file is class-independent (fair).
  EXPECT_NEAR(cell(low, 0, 6), cell(low, 9, 6), 1e-6);

  // p = 0.9 (Fig. 4(b)) with rho = 0.1: every class beats MFCD online.
  const util::Table high = fig4bc_table(paper_base(), 0.9, rhos);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_LT(cell(high, r, 1), cell(high, r, 5)) << "class " << r + 1;
  }
}

TEST(ValidationTest, AllChecksTight) {
  const std::vector<double> ps{0.2, 0.7, 1.0};
  const util::Table t = validation_table(paper_base(), ps);
  ASSERT_EQ(t.num_rows(), 7u);  // 4 degenerate + 3 identity rows
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const double expected = cell(t, r, 2);
    const double diff = cell(t, r, 4);
    EXPECT_LT(diff, 1e-3 * expected + 1e-6) << t.cell_text(r, 0);
  }
}

TEST(Fig4aTest, CellsIndependentOfSweepOrder) {
  // The parallel grid fill must be deterministic.
  const std::vector<double> ps{0.5};
  const std::vector<double> rhos{0.2, 0.8};
  const util::Table a = fig4a_table(paper_base(), ps, rhos);
  const util::Table b = fig4a_table(paper_base(), ps, rhos);
  EXPECT_EQ(a.cell_text(0, 1), b.cell_text(0, 1));
  EXPECT_EQ(a.cell_text(0, 2), b.cell_text(0, 2));
}

}  // namespace
}  // namespace btmf::core
