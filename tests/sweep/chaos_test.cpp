// Chaos tests: the failure-injection half of the robustness story. A
// worker process is SIGKILLed mid-sweep (exactly like an OOM kill) and a
// cache entry is tampered with on disk; in both cases the engine must
// produce bit-identical results to an undisturbed run — resume replays
// the journal, corruption quarantines and recomputes. docs/ROBUSTNESS.md
// documents both paths; the CI chaos smoke job drives the same scenario
// through btmf_tool.
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "btmf/robust/failure.h"
#include "btmf/sweep/cache.h"
#include "btmf/sweep/sweep.h"
#include "btmf/util/error.h"

namespace btmf::sweep {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// 6-point sweep whose second point fails deterministically with a
/// hostile (multi-line) message — the journal must replay it verbatim.
SweepSpec chaotic_spec() {
  SweepSpec spec;
  spec.name = "chaos";
  spec.grid.axis("x", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  spec.fingerprint = "chaos-v1";
  spec.compute = [](const GridPoint& point) {
    if (point.at("x") == 2.0) {
      throw SolverError("diverged at x=2\nresidual 1.7e+12 after 400 steps");
    }
    PointResult result;
    result.values["third"] = point.at("x") / 3.0;
    result.values["square"] = point.at("x") * point.at("x");
    return result;
  };
  return spec;
}

/// Sequential execution: one worker, one shard, so grid order IS
/// execution order and the chaos kill point is deterministic.
SweepOptions sequential_options(const std::string& cache_dir) {
  SweepOptions options;
  options.cache_dir = cache_dir;
  options.jobs = 1;
  options.shards = 1;
  return options;
}

void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.num_points(), b.num_points());
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a.points[i].status, b.points[i].status);
    EXPECT_EQ(a.points[i].failure, b.points[i].failure);
    EXPECT_EQ(a.points[i].error, b.points[i].error);
    ASSERT_EQ(a.points[i].result.values.size(),
              b.points[i].result.values.size());
    for (const auto& [name, value] : a.points[i].result.values) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
                std::bit_cast<std::uint64_t>(b.points[i].result.at(name)))
          << "value '" << name << "'";
    }
  }
  EXPECT_EQ(a.failures, b.failures);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(RobustChaosTest, SigkillMidSweepThenResumeIsBitIdentical) {
  const std::string killed_dir = fresh_dir("chaos_killed");
  const std::string reference_dir = fresh_dir("chaos_reference");
  const SweepSpec spec = chaotic_spec();

  // Run the sweep in a forked worker that hard-dies (SIGKILL — no
  // unwinding, no destructors) right after the journal records its 2nd
  // computed point: one success and the failing point are on disk, the
  // rest never ran.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    ::setenv("BTMF_CHAOS_KILL_AFTER", "2", 1);
    try {
      (void)run_sweep(chaotic_spec(), sequential_options(killed_dir));
    } catch (...) {
      ::_exit(43);
    }
    ::_exit(42);  // unreachable: the chaos hook must have killed us
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "worker exited normally (status " << status
      << ") instead of dying to the chaos SIGKILL";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_TRUE(fs::exists(sweep_journal_path(spec, killed_dir)));

  // The undisturbed reference run, in its own cache namespace.
  const SweepResult reference =
      run_sweep(spec, sequential_options(reference_dir));
  ASSERT_EQ(reference.failures, 1u);

  // Resume where the killed worker stopped: the success comes from the
  // cache, the journaled failure replays verbatim (message and all), and
  // only the never-started points compute.
  SweepOptions resume_options = sequential_options(killed_dir);
  resume_options.resume = true;
  const SweepResult resumed = run_sweep(spec, resume_options);

  expect_bit_identical(reference, resumed);
  EXPECT_EQ(resumed.resumed_failures, 1u);
  EXPECT_TRUE(resumed.points[1].from_journal);
  EXPECT_EQ(resumed.points[1].failure, robust::FailureKind::kError);
  EXPECT_EQ(resumed.points[1].error,
            "diverged at x=2\nresidual 1.7e+12 after 400 steps");
  EXPECT_EQ(resumed.cache_hits, 1u);       // the point computed pre-kill
  EXPECT_EQ(resumed.cache_misses, 4u);     // the four never-started points
}

TEST(RobustChaosTest, ResumeWithoutResumeFlagRecomputesFailures) {
  // Safety check on the flag's semantics: a plain rerun (no --resume)
  // truncates the journal and recomputes failed points from scratch.
  const std::string dir = fresh_dir("chaos_no_resume");
  const SweepSpec spec = chaotic_spec();
  const SweepResult first = run_sweep(spec, sequential_options(dir));
  ASSERT_EQ(first.failures, 1u);
  const SweepResult second = run_sweep(spec, sequential_options(dir));
  EXPECT_EQ(second.resumed_failures, 0u);
  EXPECT_FALSE(second.points[1].from_journal);
  EXPECT_EQ(second.points[1].attempts, 1u);  // actually recomputed
  expect_bit_identical(first, second);
}
#endif  // __unix__ || __APPLE__

TEST(RobustChaosTest, TamperedCacheEntryIsQuarantinedAndRecomputed) {
  const std::string dir = fresh_dir("chaos_tamper");
  const SweepSpec spec = chaotic_spec();
  const SweepResult cold = run_sweep(spec, sequential_options(dir));

  // Tamper with one stored entry: chop off the "end\n" terminator, as a
  // torn write or bit rot would. The file still claims to be this key's,
  // so it must be treated as corruption, not a benign miss.
  DiskCache cache(dir);
  const CacheKey key{spec.name, spec.fingerprint,
                     spec.grid.point(2).canonical()};
  const std::string entry = cache.entry_path(key);
  ASSERT_TRUE(fs::exists(entry));
  fs::resize_file(entry, fs::file_size(entry) - 4);

  const SweepResult healed = run_sweep(spec, sequential_options(dir));
  EXPECT_EQ(healed.quarantined, 1u);
  EXPECT_EQ(healed.cache_misses, 2u);  // the failing point + the healed one
  expect_bit_identical(cold, healed);
  // The bad bytes were preserved for inspection, and the slot is clean.
  EXPECT_TRUE(fs::exists(entry + ".quarantined"));
  const SweepResult warm = run_sweep(spec, sequential_options(dir));
  EXPECT_EQ(warm.quarantined, 0u);
  EXPECT_EQ(warm.cache_hits, 5u);
}

}  // namespace
}  // namespace btmf::sweep
