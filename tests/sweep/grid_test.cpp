#include "btmf/sweep/grid.h"

#include <gtest/gtest.h>

#include <vector>

#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::sweep {
namespace {

TEST(SweepGrid, LinspaceCoversEndpointsEvenly) {
  const std::vector<double> v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
}

TEST(SweepGrid, LinspaceSinglePointIsLo) {
  EXPECT_EQ(linspace(2.5, 9.0, 1), std::vector<double>{2.5});
}

TEST(SweepGrid, LinspaceZeroPointsThrows) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), ConfigError);
}

TEST(SweepGrid, EnumeratesRowMajorFirstAxisSlowest) {
  Grid grid;
  grid.axis("a", {1.0, 2.0}).axis("b", {10.0, 20.0, 30.0});
  ASSERT_EQ(grid.size(), 6u);

  const GridPoint first = grid.point(0);
  EXPECT_DOUBLE_EQ(first.at("a"), 1.0);
  EXPECT_DOUBLE_EQ(first.at("b"), 10.0);

  // b (the last axis) varies fastest.
  EXPECT_DOUBLE_EQ(grid.point(1).at("b"), 20.0);
  EXPECT_DOUBLE_EQ(grid.point(1).at("a"), 1.0);
  EXPECT_DOUBLE_EQ(grid.point(3).at("a"), 2.0);
  EXPECT_DOUBLE_EQ(grid.point(3).at("b"), 10.0);
  EXPECT_DOUBLE_EQ(grid.point(5).at("a"), 2.0);
  EXPECT_DOUBLE_EQ(grid.point(5).at("b"), 30.0);
}

TEST(SweepGrid, PointCoordsKeepAxisOrder) {
  Grid grid;
  grid.axis("p", {0.5}).axis("rho", {0.25});
  const GridPoint point = grid.point(0);
  ASSERT_EQ(point.coords.size(), 2u);
  EXPECT_EQ(point.coords[0].first, "p");
  EXPECT_EQ(point.coords[1].first, "rho");
}

TEST(SweepGrid, CanonicalUsesExactDoubles) {
  Grid grid;
  grid.axis("p", {0.1}).axis("rho", {1.0 / 3.0});
  const std::string canonical = grid.point(0).canonical();
  EXPECT_EQ(canonical, "p=" + util::format_double_exact(0.1) +
                           ";rho=" + util::format_double_exact(1.0 / 3.0));
}

TEST(SweepGrid, MissingCoordinateThrows) {
  Grid grid;
  grid.axis("p", {0.5});
  EXPECT_THROW((void)grid.point(0).at("rho"), ConfigError);
}

TEST(SweepGrid, DuplicateAxisNameThrows) {
  Grid grid;
  grid.axis("p", {0.5});
  EXPECT_THROW(grid.axis("p", {0.9}), ConfigError);
}

TEST(SweepGrid, EmptyAxisThrows) {
  Grid grid;
  EXPECT_THROW(grid.axis("p", {}), ConfigError);
  EXPECT_THROW(grid.axis("", {0.5}), ConfigError);
}

TEST(SweepGrid, OutOfRangePointThrows) {
  Grid grid;
  grid.axis("p", {0.5, 0.9});
  EXPECT_THROW(grid.point(2), ConfigError);
}

TEST(SweepGrid, AxislessGridIsEmpty) {
  EXPECT_EQ(Grid{}.size(), 0u);
}

}  // namespace
}  // namespace btmf::sweep
