#include "btmf/sweep/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include "btmf/obs/metrics.h"
#include "btmf/robust/failure.h"
#include "btmf/util/error.h"

namespace btmf::sweep {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// 5 x 2 grid of cheap arithmetic points.
SweepSpec arithmetic_spec(std::string fingerprint = "v1") {
  SweepSpec spec;
  spec.name = "arith";
  spec.grid.axis("x", {1.0, 2.0, 3.0, 4.0, 5.0}).axis("y", {0.25, 0.5});
  spec.fingerprint = std::move(fingerprint);
  spec.compute = [](const GridPoint& point) {
    PointResult result;
    result.values["prod"] = point.at("x") * point.at("y");
    result.values["ratio"] = point.at("x") / 3.0;  // non-terminating binary
    return result;
  };
  return spec;
}

/// Bit-exact equality of two sweep results (values AND statuses).
void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.num_points(), b.num_points());
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    EXPECT_EQ(a.points[i].status, b.points[i].status) << "point " << i;
    ASSERT_EQ(a.points[i].result.values.size(),
              b.points[i].result.values.size());
    for (const auto& [name, value] : a.points[i].result.values) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
                std::bit_cast<std::uint64_t>(b.points[i].result.at(name)))
          << "point " << i << " value '" << name << "'";
    }
  }
}

TEST(SweepEngine, ComputesEveryPointInGridOrder) {
  const SweepSpec spec = arithmetic_spec();
  const SweepResult sweep = run_sweep(spec);
  ASSERT_EQ(sweep.num_points(), 10u);
  EXPECT_TRUE(sweep.all_ok());
  EXPECT_EQ(sweep.cache_hits, 0u);
  EXPECT_EQ(sweep.cache_misses, 10u);
  for (std::size_t i = 0; i < sweep.num_points(); ++i) {
    const PointOutcome& outcome = sweep.points[i];
    EXPECT_EQ(outcome.index, i);
    EXPECT_FALSE(outcome.from_cache);
    EXPECT_DOUBLE_EQ(outcome.result.at("prod"),
                     outcome.point.at("x") * outcome.point.at("y"));
  }
  // Slot 0 is the first grid point (x = 1, y = 0.25) regardless of which
  // worker computed it.
  EXPECT_DOUBLE_EQ(sweep.points[0].point.at("x"), 1.0);
  EXPECT_DOUBLE_EQ(sweep.points[0].point.at("y"), 0.25);
  EXPECT_DOUBLE_EQ(sweep.result_at(9).at("prod"), 2.5);
}

TEST(SweepEngine, ColdThenWarmCacheServesIdenticalResults) {
  SweepOptions options;
  options.cache_dir = fresh_dir("sweep_engine_warm");
  const SweepSpec spec = arithmetic_spec();

  const SweepResult cold = run_sweep(spec, options);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 10u);

  const SweepResult warm = run_sweep(spec, options);
  EXPECT_EQ(warm.cache_hits, 10u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_TRUE(warm.points[0].from_cache);
  expect_identical(cold, warm);

  // The warm run is also bit-identical to a cache-less run: serving from
  // disk is observationally equivalent to recomputing.
  expect_identical(run_sweep(spec), warm);
}

TEST(SweepEngine, ResumesAfterInterruptWithPartialCache) {
  SweepOptions options;
  options.cache_dir = fresh_dir("sweep_engine_resume");

  // Simulate an interrupted earlier run: only a sub-grid got cached.
  SweepSpec partial = arithmetic_spec();
  partial.grid = Grid();
  partial.grid.axis("x", {1.0, 2.0, 3.0}).axis("y", {0.25, 0.5});
  const SweepResult first = run_sweep(partial, options);
  EXPECT_EQ(first.cache_misses, 6u);

  // The resumed full run recomputes exactly the missing points...
  const SweepSpec spec = arithmetic_spec();
  const SweepResult resumed = run_sweep(spec, options);
  EXPECT_EQ(resumed.cache_hits, 6u);
  EXPECT_EQ(resumed.cache_misses, 4u);

  // ...and is bit-identical to a never-interrupted cold run.
  expect_identical(run_sweep(spec), resumed);
}

TEST(SweepEngine, ShardCountDoesNotChangeResults) {
  const SweepSpec spec = arithmetic_spec();
  const SweepResult baseline = run_sweep(spec);
  for (const std::size_t shards : {1u, 3u, 7u, 64u}) {
    SweepOptions options;
    options.shards = shards;
    expect_identical(baseline, run_sweep(spec, options));
  }
}

TEST(SweepEngine, DedicatedPoolMatchesGlobalPool) {
  SweepOptions options;
  options.jobs = 3;
  expect_identical(run_sweep(arithmetic_spec()),
                   run_sweep(arithmetic_spec(), options));
}

TEST(SweepEngine, FailedPointIsRecordedNotFatalAndNotCached) {
  SweepSpec spec = arithmetic_spec();
  spec.compute = [](const GridPoint& point) {
    if (point.at("x") == 3.0 && point.at("y") == 0.5) {
      throw ConfigError("deliberate failure");
    }
    PointResult result;
    result.values["prod"] = point.at("x") * point.at("y");
    return result;
  };
  SweepOptions options;
  options.cache_dir = fresh_dir("sweep_engine_failure");

  const SweepResult sweep = run_sweep(spec, options);
  EXPECT_EQ(sweep.failures, 1u);
  EXPECT_FALSE(sweep.all_ok());

  std::size_t failed_index = 0;
  for (const PointOutcome& outcome : sweep.points) {
    if (outcome.status == PointStatus::kFailed) {
      failed_index = outcome.index;
      EXPECT_NE(outcome.error.find("deliberate failure"), std::string::npos);
    } else {
      EXPECT_DOUBLE_EQ(outcome.result.at("prod"),
                       outcome.point.at("x") * outcome.point.at("y"));
    }
  }
  EXPECT_THROW((void)sweep.result_at(failed_index), ConfigError);
  EXPECT_NO_THROW(
      (void)sweep.result_at((failed_index + 1) % sweep.num_points()));

  // Failures are never cached: the rerun serves the 9 good points from
  // disk and retries (and re-fails) only the bad one.
  const SweepResult rerun = run_sweep(spec, options);
  EXPECT_EQ(rerun.cache_hits, 9u);
  EXPECT_EQ(rerun.cache_misses, 1u);
  EXPECT_EQ(rerun.failures, 1u);
}

TEST(SweepEngine, FingerprintChangeInvalidatesCache) {
  SweepOptions options;
  options.cache_dir = fresh_dir("sweep_engine_fingerprint");
  EXPECT_EQ(run_sweep(arithmetic_spec("v1"), options).cache_misses, 10u);
  EXPECT_EQ(run_sweep(arithmetic_spec("v1"), options).cache_hits, 10u);

  // Same sweep name, changed configuration fingerprint: full recompute.
  const SweepResult changed = run_sweep(arithmetic_spec("v2"), options);
  EXPECT_EQ(changed.cache_hits, 0u);
  EXPECT_EQ(changed.cache_misses, 10u);
}

TEST(SweepEngine, StreamsProgressThroughMetricsRegistry) {
  obs::MetricsRegistry metrics;
  SweepOptions options;
  options.cache_dir = fresh_dir("sweep_engine_metrics");
  options.metrics = &metrics;
  run_sweep(arithmetic_spec(), options);

  const obs::MetricsSnapshot cold = metrics.snapshot();
  EXPECT_DOUBLE_EQ(cold.gauges.at("sweep.points_total"), 10.0);
  EXPECT_EQ(cold.counters.at("sweep.points_done"), 10u);
  EXPECT_EQ(cold.counters.at("sweep.cache_hits"), 0u);
  EXPECT_EQ(cold.counters.at("sweep.cache_misses"), 10u);
  EXPECT_EQ(cold.counters.at("sweep.failures"), 0u);
  EXPECT_EQ(cold.histograms.at("sweep.point_seconds").count, 10u);

  run_sweep(arithmetic_spec(), options);
  const obs::MetricsSnapshot warm = metrics.snapshot();
  EXPECT_EQ(warm.counters.at("sweep.points_done"), 20u);
  EXPECT_EQ(warm.counters.at("sweep.cache_hits"), 10u);
  EXPECT_EQ(warm.counters.at("sweep.cache_misses"), 10u);
}

TEST(SweepEngine, MalformedSpecThrows) {
  SweepSpec nameless = arithmetic_spec();
  nameless.name.clear();
  EXPECT_THROW(run_sweep(nameless), ConfigError);

  SweepSpec gridless = arithmetic_spec();
  gridless.grid = Grid();
  EXPECT_THROW(run_sweep(gridless), ConfigError);

  SweepSpec computeless = arithmetic_spec();
  computeless.compute = nullptr;
  EXPECT_THROW(run_sweep(computeless), ConfigError);
}

TEST(SweepEngine, ResultAtOutOfRangeThrows) {
  const SweepResult sweep = run_sweep(arithmetic_spec());
  EXPECT_THROW((void)sweep.result_at(sweep.num_points()), ConfigError);
}

TEST(SweepEngine, AbandonedPointOutlivesSpecAndResultSafely) {
  // Regression for the abandoned-worker use-after-free: a point that
  // ignores its deadline is abandoned, run_sweep returns, and the spec
  // and result go out of scope while the runaway thread still executes
  // the task chain. The chain is copied by value end to end, so under
  // ASan this passes; a reference capture of `spec`/`outcome` anywhere
  // in sweep/supervisor/watchdog would fault here.
  static std::atomic<bool> worker_done{false};
  worker_done = false;
  {
    SweepSpec spec;
    spec.name = "abandon";
    spec.grid.axis("x", {2.0});
    spec.fingerprint = "abandon-v1";
    spec.compute = [](const GridPoint& point) {
      // Never polls the cancel token: can only be abandoned.
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      PointResult result;
      result.values["v"] = point.at("x");
      worker_done = true;
      return result;
    };
    SweepOptions options;
    options.robust.timeout_s = 0.05;
    options.robust.grace_s = 0.05;
    const SweepResult sweep = run_sweep(spec, options);
    ASSERT_EQ(sweep.num_points(), 1u);
    EXPECT_EQ(sweep.points[0].status, PointStatus::kFailed);
    EXPECT_EQ(sweep.points[0].failure, robust::FailureKind::kTimeout);
    EXPECT_EQ(sweep.timeouts, 1u);
  }  // spec (compute fn) and the result the task referenced die here
  for (int i = 0; i < 200 && !worker_done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(worker_done);
}

}  // namespace
}  // namespace btmf::sweep
