#include "btmf/sweep/reproduce.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "btmf/util/error.h"

namespace btmf::sweep {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(SweepReproduce, RegistryListsFiguresInPaperOrder) {
  const std::vector<FigureSpec>& registry = figure_registry();
  ASSERT_EQ(registry.size(), 5u);
  EXPECT_EQ(registry[0].name, "fig2");
  EXPECT_EQ(registry[1].name, "fig3");
  EXPECT_EQ(registry[2].name, "fig4a");
  EXPECT_EQ(registry[3].name, "fig4bc");
  EXPECT_EQ(registry[4].name, "adapt");
  for (const FigureSpec& spec : registry) {
    EXPECT_NE(spec.run, nullptr);
    EXPECT_FALSE(spec.title.empty());
    EXPECT_FALSE(spec.paper_ref.empty());
  }
}

TEST(SweepReproduce, FindFigureByName) {
  ASSERT_NE(find_figure("fig4a"), nullptr);
  EXPECT_EQ(find_figure("fig4a")->name, "fig4a");
  EXPECT_EQ(find_figure("fig5"), nullptr);
  EXPECT_EQ(find_figure(""), nullptr);
}

TEST(SweepReproduce, ClaimRelationsEvaluateCorrectly) {
  EXPECT_TRUE(claim_within("t", "", 98.05, 98.0, 0.1).pass);
  EXPECT_FALSE(claim_within("t", "", 98.2, 98.0, 0.1).pass);
  EXPECT_TRUE(claim_at_most("t", "", 1.0, 1.0).pass);
  EXPECT_FALSE(claim_at_most("t", "", 1.1, 1.0).pass);
  EXPECT_TRUE(claim_at_most("t", "", 1.1, 1.0, 0.2).pass);
  EXPECT_TRUE(claim_at_least("t", "", 0.9, 1.0, 0.2).pass);
  EXPECT_FALSE(claim_at_least("t", "", 0.7, 1.0, 0.2).pass);
}

TEST(SweepReproduce, NanMeasurementFailsEveryRelation) {
  const double nan = std::nan("");
  EXPECT_FALSE(claim_within("t", "", nan, 0.0, 1e9).pass);
  EXPECT_FALSE(claim_at_most("t", "", nan, 1e9).pass);
  EXPECT_FALSE(claim_at_least("t", "", nan, -1e9).pass);
}

TEST(SweepReproduce, Fig2ClaimsPassAgainstPaperValues) {
  const FigureReport report = find_figure("fig2")->run({});
  EXPECT_EQ(report.name, "fig2");
  EXPECT_EQ(report.claims.size(), 5u);
  for (const Claim& claim : report.claims) {
    EXPECT_TRUE(claim.pass) << claim.id << ": measured " << claim.measured;
  }
  EXPECT_EQ(report.stats.points, 21u);
  EXPECT_EQ(report.stats.cache_misses, 21u);  // uncached run computes all
  ASSERT_EQ(report.tables.size(), 1u);
  EXPECT_EQ(report.tables[0].second.num_rows(), 21u);
}

TEST(SweepReproduce, Fig3ClaimsPassAgainstPaperValues) {
  const FigureReport report = find_figure("fig3")->run({});
  for (const Claim& claim : report.claims) {
    EXPECT_TRUE(claim.pass) << claim.id << ": measured " << claim.measured;
  }
  EXPECT_TRUE(report.all_pass());
}

TEST(SweepReproduce, Fig4bcClaimsPassAgainstPaperValues) {
  const FigureReport report = find_figure("fig4bc")->run({});
  for (const Claim& claim : report.claims) {
    EXPECT_TRUE(claim.pass) << claim.id << ": measured " << claim.measured;
  }
  ASSERT_EQ(report.tables.size(), 2u);  // Fig. 4(b) and Fig. 4(c)
}

TEST(SweepReproduce, CachedRerunReproducesTheReportVerbatim) {
  ReproduceOptions options;
  options.cache_dir = fresh_dir("reproduce_cache");
  const FigureReport cold = find_figure("fig2")->run(options);
  const FigureReport warm = find_figure("fig2")->run(options);
  EXPECT_EQ(cold.stats.cache_misses, 21u);
  EXPECT_EQ(warm.stats.cache_hits, 21u);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  // Rendering both to markdown compares every table cell and claim value
  // bit-for-bit (modulo the identical formatting path).
  EXPECT_EQ(reproduction_markdown({cold}), reproduction_markdown({warm}));
}

TEST(SweepReproduce, MarkdownIsDeterministicAndStructured) {
  const FigureReport report = find_figure("fig2")->run({});
  const std::string doc = reproduction_markdown({report});
  EXPECT_EQ(doc, reproduction_markdown({report}));
  EXPECT_NE(doc.find("Machine-written file"), std::string::npos);
  EXPECT_NE(doc.find("## Summary"), std::string::npos);
  EXPECT_NE(doc.find("fig2.mtcd_p1"), std::string::npos);
  EXPECT_NE(doc.find("**Overall: PASS**"), std::string::npos);
  // No wall-clock times or dates leak in (report diffs must be stable).
  EXPECT_EQ(doc.find("seconds"), std::string::npos);
}

TEST(SweepReproduce, FailingClaimMarksFigureAndOverallAsFail) {
  FigureReport report;
  report.name = "synthetic";
  report.title = "synthetic";
  report.paper_ref = "none";
  report.description = "synthetic failure";
  report.claims.push_back(claim_within("synthetic.bad", "", 2.0, 1.0, 0.1));
  EXPECT_FALSE(report.all_pass());
  const std::string doc = reproduction_markdown({report});
  EXPECT_NE(doc.find("**Overall: FAIL**"), std::string::npos);
  EXPECT_NE(doc.find("| FAIL"), std::string::npos);
}

TEST(SweepReproduce, WriteReportCreatesParentDirectories) {
  const fs::path dir = fs::path(fresh_dir("reproduce_write")) / "docs";
  const std::string path = (dir / "REPRODUCTION.md").string();
  const FigureReport report = find_figure("fig3")->run({});
  write_reproduction_report(path, {report});
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), reproduction_markdown({report}));
}

}  // namespace
}  // namespace btmf::sweep
