#include "btmf/sweep/cache.h"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "btmf/util/error.h"

namespace btmf::sweep {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::trunc);
  file << content;
}

CacheKey test_key() {
  return CacheKey{"unit", "k=10;p=0.5", "p=0.25;rho=0.75"};
}

TEST(SweepCache, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(SweepCache, RoundTripsValuesBitIdentically) {
  const DiskCache cache(fresh_dir("sweep_cache_roundtrip"));
  PointResult stored;
  stored.values["a"] = 0.1;
  stored.values["b"] = 1.0 / 3.0;
  stored.values["c"] = 1e-300;
  stored.values["d"] = 6.02214076e23;
  stored.values["e"] = -123456.789012345;
  cache.store(test_key(), stored);

  const auto loaded = cache.load(test_key());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, stored);
  for (const auto& [name, value] : stored.values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->at(name)),
              std::bit_cast<std::uint64_t>(value))
        << "value '" << name << "' did not round-trip bit-identically";
  }
}

TEST(SweepCache, MissesOnAbsentKey) {
  const DiskCache cache(fresh_dir("sweep_cache_absent"));
  EXPECT_FALSE(cache.load(test_key()).has_value());
}

TEST(SweepCache, SpecFingerprintSeparatesEntries) {
  const DiskCache cache(fresh_dir("sweep_cache_spec"));
  PointResult result;
  result.values["v"] = 1.0;
  cache.store(test_key(), result);

  CacheKey other = test_key();
  other.spec = "k=10;p=0.9";  // e.g. a solver-option or scenario change
  EXPECT_FALSE(cache.load(other).has_value());
  EXPECT_TRUE(cache.load(test_key()).has_value());
}

TEST(SweepCache, RejectsEntryWithMismatchedKeyMaterial) {
  const DiskCache cache(fresh_dir("sweep_cache_tamper"));
  PointResult result;
  result.values["v"] = 2.5;
  cache.store(test_key(), result);

  // Simulate a hash collision / hand-edited entry: same file name, stored
  // key material describing a different point.
  const std::string path = cache.entry_path(test_key());
  std::string content = slurp(path);
  const std::string needle = "point p=0.25;rho=0.75";
  const std::size_t pos = content.find(needle);
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, needle.size(), "point p=0.99;rho=0.75");
  spit(path, content);

  EXPECT_FALSE(cache.load(test_key()).has_value());
}

TEST(SweepCache, TruncatedEntryIsAMiss) {
  const DiskCache cache(fresh_dir("sweep_cache_truncated"));
  PointResult result;
  result.values["v"] = 3.75;
  cache.store(test_key(), result);

  // Drop the "end" terminator, as an interrupted write would.
  const std::string path = cache.entry_path(test_key());
  std::string content = slurp(path);
  ASSERT_TRUE(content.ends_with("end\n"));
  content.resize(content.size() - 4);
  spit(path, content);

  EXPECT_FALSE(cache.load(test_key()).has_value());

  // Re-storing repairs the entry.
  cache.store(test_key(), result);
  ASSERT_TRUE(cache.load(test_key()).has_value());
  EXPECT_EQ(*cache.load(test_key()), result);
}

TEST(SweepCache, GarbageFileIsAMiss) {
  const DiskCache cache(fresh_dir("sweep_cache_garbage"));
  PointResult result;
  result.values["v"] = 1.0;
  cache.store(test_key(), result);
  spit(cache.entry_path(test_key()), "not a cache entry at all\n");
  EXPECT_FALSE(cache.load(test_key()).has_value());
}

TEST(SweepCache, RejectsInvalidNames) {
  const DiskCache cache(fresh_dir("sweep_cache_names"));
  PointResult bad_value_name;
  bad_value_name.values["has space"] = 1.0;
  EXPECT_THROW(cache.store(test_key(), bad_value_name), ConfigError);

  CacheKey bad_sweep = test_key();
  bad_sweep.sweep = "a/b";
  PointResult ok;
  ok.values["v"] = 1.0;
  EXPECT_THROW(cache.store(bad_sweep, ok), ConfigError);
  CacheKey empty_sweep = test_key();
  empty_sweep.sweep = "";
  EXPECT_THROW(cache.store(empty_sweep, ok), ConfigError);
}

TEST(SweepCache, MaterialFoldsInEveryIngredient) {
  const CacheKey key = test_key();
  CacheKey sweep_changed = key;
  sweep_changed.sweep = "other";
  CacheKey spec_changed = key;
  spec_changed.spec = "k=20";
  CacheKey point_changed = key;
  point_changed.point = "p=0.5";
  EXPECT_NE(key.hash(), sweep_changed.hash());
  EXPECT_NE(key.hash(), spec_changed.hash());
  EXPECT_NE(key.hash(), point_changed.hash());
}

TEST(SweepCache, PointResultAtThrowsOnUnknownName) {
  PointResult result;
  result.values["v"] = 1.0;
  EXPECT_DOUBLE_EQ(result.at("v"), 1.0);
  EXPECT_THROW((void)result.at("missing"), ConfigError);
}

TEST(SweepCache, SaltIsTheMaterialPrefix) {
  // The handshake salt and every cache key's material must share bytes:
  // the serve protocol relies on salt agreement implying key agreement.
  const std::string material = test_key().material();
  EXPECT_EQ(material.rfind(cache_format_salt(), 0), 0u);
}

TEST(SweepCache, OpeningSweepsStaleTemporaries) {
  const std::string root = fresh_dir("sweep_cache_stale_tmp");
  {
    const DiskCache warmup(root);  // create the directory tree
    PointResult result;
    result.values["v"] = 1.0;
    warmup.store(test_key(), result);
  }
  // Plant a crashed writer's leftover: a *.tmp.* file old enough to be
  // stale, plus a fresh one that a live writer could still own.
  const fs::path dir = fs::path(root) / "unit";
  const fs::path stale = dir / "deadbeef.point.tmp.1234.1";
  const fs::path fresh = dir / "cafef00d.point.tmp.5678.2";
  spit(stale.string(), "half-written");
  spit(fresh.string(), "half-written");
  fs::last_write_time(
      stale, fs::file_time_type::clock::now() - std::chrono::hours(24));

  const DiskCache reopened(root);
  EXPECT_FALSE(fs::exists(stale)) << "stale temporary not swept";
  EXPECT_TRUE(fs::exists(fresh)) << "fresh temporary must be left alone";
  // The committed entry survives the sweep.
  EXPECT_TRUE(reopened.load(test_key()).has_value());
}

TEST(SweepCache, StaleTemporarySweepIsDirectAndCounted) {
  const std::string root = fresh_dir("sweep_cache_stale_tmp_direct");
  fs::create_directories(fs::path(root) / "nested");
  const fs::path one = fs::path(root) / "a.point.tmp.1.1";
  const fs::path two = fs::path(root) / "nested" / "b.point.tmp.2.2";
  spit(one.string(), "x");
  spit(two.string(), "y");
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(48);
  fs::last_write_time(one, old_time);
  fs::last_write_time(two, old_time);
  EXPECT_EQ(sweep_stale_temporaries(root, kStaleTempMaxAgeSeconds), 2u);
  EXPECT_EQ(sweep_stale_temporaries(root, kStaleTempMaxAgeSeconds), 0u);
  // A missing root is a no-op, never an error.
  EXPECT_EQ(sweep_stale_temporaries(root + "-nonexistent", 1.0), 0u);
}

}  // namespace
}  // namespace btmf::sweep
