#include "btmf/util/strings.h"

#include <gtest/gtest.h>

#include "btmf/util/error.h"

namespace btmf::util {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoSeparatorYieldsWholeString) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(FormatDoubleTest, TrimsTrailingNoise) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(80.0), "80");
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(to_lower("MtCd"), "mtcd");
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("0.25", "test"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("  -3e2 ", "test"), -300.0);
  EXPECT_THROW((void)parse_double("abc", "test"), ConfigError);
  EXPECT_THROW((void)parse_double("1.5x", "test"), ConfigError);
  EXPECT_THROW((void)parse_double("", "test"), ConfigError);
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42", "test"), 42);
  EXPECT_EQ(parse_int("-7", "test"), -7);
  EXPECT_THROW((void)parse_int("4.2", "test"), ConfigError);
  EXPECT_THROW((void)parse_int("", "test"), ConfigError);
}

}  // namespace
}  // namespace btmf::util
