#include "btmf/util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "btmf/util/error.h"

namespace btmf::util {
namespace {

TEST(TableTest, CellTextRendersDoublesWithPrecision) {
  Table t({"a", "b"});
  t.set_precision(3);
  t.add_row({std::string("x"), 1.0 / 3.0});
  EXPECT_EQ(t.cell_text(0, 0), "x");
  EXPECT_EQ(t.cell_text(0, 1), "0.333");
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW((void)t.add_row({1.0}), ConfigError);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW((void)Table({}), ConfigError);
}

TEST(TableTest, PrettyOutputIsAligned) {
  Table t({"name", "v"});
  t.add_row({std::string("alpha"), 1.0});
  t.add_row({std::string("b"), 22.5});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  // Header, separator and two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Markdown table shape: every line starts with '|'.
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '|');
    EXPECT_EQ(line.back(), '|');
  }
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t({"label", "note"});
  t.add_row({std::string("a,b"), std::string("say \"hi\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "label,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, SaveCsvRoundTrip) {
  Table t({"p", "value"});
  t.add_row({0.5, 80.0});
  const std::string path = ::testing::TempDir() + "/btmf_table_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "p,value");
  EXPECT_EQ(row, "0.5,80");
  std::remove(path.c_str());
}

TEST(TableTest, SaveCsvToBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW((void)t.save_csv("/nonexistent-dir/x/y.csv"), IoError);
}

TEST(TableTest, NumRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, OutOfRangeCellThrows) {
  Table t({"a"});
  t.add_row({1.0});
  EXPECT_THROW((void)t.cell_text(1, 0), ConfigError);
  EXPECT_THROW((void)t.cell_text(0, 1), ConfigError);
}

}  // namespace
}  // namespace btmf::util
