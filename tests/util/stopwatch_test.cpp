#include "btmf/util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace btmf::util {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // generous upper bound for loaded CI machines
}

TEST(StopwatchTest, ResetRestartsTheClock) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.015);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch watch;
  const double a = watch.seconds();
  const double b = watch.seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace btmf::util
