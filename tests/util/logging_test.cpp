#include "btmf/util/logging.h"

#include <gtest/gtest.h>

namespace btmf::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_threshold(); }
  void TearDown() override { set_log_threshold(saved_); }
  LogLevel saved_{};
};

TEST_F(LoggingTest, ThresholdRoundTrips) {
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
}

TEST_F(LoggingTest, BelowThresholdIsDropped) {
  set_log_threshold(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  BTMF_LOG_INFO << "should not appear";
  BTMF_LOG_ERROR << "must appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("must appear"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesLevelTag) {
  set_log_threshold(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  BTMF_LOG_WARN << "careful " << 42;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[warn] careful 42"), std::string::npos);
}

}  // namespace
}  // namespace btmf::util
