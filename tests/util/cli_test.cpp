#include "btmf/util/cli.h"

#include <gtest/gtest.h>

#include <array>

#include "btmf/util/error.h"

namespace btmf::util {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test program");
  parser.add_option("p", "0.5", "correlation");
  parser.add_option("k", "10", "files");
  parser.add_flag("verbose", "chatty output");
  return parser;
}

TEST(CliTest, DefaultsApplyWhenAbsent) {
  ArgParser parser = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(parser.parse(1, argv.data()));
  EXPECT_DOUBLE_EQ(parser.get_double("p"), 0.5);
  EXPECT_EQ(parser.get_int("k"), 10);
  EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(CliTest, SpaceSeparatedValues) {
  ArgParser parser = make_parser();
  const std::array<const char*, 3> argv{"prog", "--p", "0.9"};
  ASSERT_TRUE(parser.parse(3, argv.data()));
  EXPECT_DOUBLE_EQ(parser.get_double("p"), 0.9);
}

TEST(CliTest, EqualsSeparatedValues) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "--k=25"};
  ASSERT_TRUE(parser.parse(2, argv.data()));
  EXPECT_EQ(parser.get_int("k"), 25);
}

TEST(CliTest, FlagsBecomeTrue) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv.data()));
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(CliTest, UnknownOptionThrows) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "--bogus"};
  EXPECT_THROW((void)parser.parse(2, argv.data()), ConfigError);
}

TEST(CliTest, MissingValueThrows) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "--p"};
  EXPECT_THROW((void)parser.parse(2, argv.data()), ConfigError);
}

TEST(CliTest, RepeatedOptionThrows) {
  ArgParser parser = make_parser();
  const std::array<const char*, 5> argv{"prog", "--p", "1", "--p", "2"};
  EXPECT_THROW((void)parser.parse(5, argv.data()), ConfigError);
}

TEST(CliTest, FlagWithValueThrows) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "--verbose=1"};
  EXPECT_THROW((void)parser.parse(2, argv.data()), ConfigError);
}

TEST(CliTest, PositionalArgumentThrows) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "stray"};
  EXPECT_THROW((void)parser.parse(2, argv.data()), ConfigError);
}

TEST(CliTest, HelpReturnsFalseAndListsOptions) {
  ArgParser parser = make_parser();
  const std::array<const char*, 2> argv{"prog", "--help"};
  ::testing::internal::CaptureStdout();
  const bool proceed = parser.parse(2, argv.data());
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_FALSE(proceed);
  EXPECT_NE(out.find("--p"), std::string::npos);
  EXPECT_NE(out.find("--verbose"), std::string::npos);
}

TEST(CliTest, UndeclaredGetThrows) {
  ArgParser parser = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(parser.parse(1, argv.data()));
  EXPECT_THROW((void)parser.get("nope"), ConfigError);
  EXPECT_THROW((void)parser.get_flag("p"), ConfigError);  // p is not a flag
}

TEST(CliTest, NonNumericValueThrowsOnTypedGet) {
  ArgParser parser = make_parser();
  const std::array<const char*, 3> argv{"prog", "--p", "high"};
  ASSERT_TRUE(parser.parse(3, argv.data()));
  EXPECT_THROW((void)parser.get_double("p"), ConfigError);
}

}  // namespace
}  // namespace btmf::util
