#include "btmf/robust/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "btmf/robust/failure.h"

namespace btmf::robust {
namespace {

namespace fs = std::filesystem;

std::string fresh_journal(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / (name + ".wal");
  fs::remove(path);
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(RobustCheckpointTest, EntriesRoundTripIncludingHostileMessages) {
  const std::string path = fresh_journal("roundtrip");
  const std::uint64_t identity = 0xabcdef12;
  {
    CheckpointJournal journal(path, identity, /*fresh=*/true);
    journal.append({0, FailureKind::kNone, 1, ""});
    journal.append({3, FailureKind::kTimeout, 2,
                    "deadline\nexceeded \\ twice"});
    journal.append({5, FailureKind::kCrash, 3, "SIGSEGV"});
    EXPECT_EQ(journal.appended(), 3u);
  }
  const std::vector<CheckpointJournal::Entry> entries =
      CheckpointJournal::load(path, identity);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].index, 0u);
  EXPECT_EQ(entries[0].kind, FailureKind::kNone);
  EXPECT_EQ(entries[1].index, 3u);
  EXPECT_EQ(entries[1].kind, FailureKind::kTimeout);
  EXPECT_EQ(entries[1].attempts, 2u);
  EXPECT_EQ(entries[1].message, "deadline\nexceeded \\ twice");
  EXPECT_EQ(entries[2].kind, FailureKind::kCrash);
}

TEST(RobustCheckpointTest, MissingJournalLoadsEmpty) {
  EXPECT_TRUE(CheckpointJournal::load(fresh_journal("absent"), 1).empty());
}

TEST(RobustCheckpointTest, ForeignIdentityIsIgnoredOnLoad) {
  const std::string path = fresh_journal("foreign");
  {
    CheckpointJournal journal(path, /*identity=*/111, /*fresh=*/true);
    journal.append({0, FailureKind::kError, 1, "boom"});
  }
  EXPECT_TRUE(CheckpointJournal::load(path, /*identity=*/222).empty());
  EXPECT_EQ(CheckpointJournal::load(path, /*identity=*/111).size(), 1u);
}

TEST(RobustCheckpointTest, TornTailIsDiscardedNotFatal) {
  const std::string path = fresh_journal("torn");
  const std::uint64_t identity = 77;
  {
    CheckpointJournal journal(path, identity, /*fresh=*/true);
    journal.append({0, FailureKind::kNone, 1, ""});
    journal.append({1, FailureKind::kError, 1, "kept"});
  }
  // Simulate a SIGKILL mid-write: a final line with no terminating '\n'.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "point 2 error 1 torn-m";
  }
  const std::vector<CheckpointJournal::Entry> entries =
      CheckpointJournal::load(path, identity);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].message, "kept");
}

TEST(RobustCheckpointTest, ResumeTrimsTornTailBeforeAppending) {
  const std::string path = fresh_journal("torn-append");
  const std::uint64_t identity = 42;
  {
    CheckpointJournal journal(path, identity, /*fresh=*/true);
    journal.append({0, FailureKind::kError, 1, "kept"});
  }
  // SIGKILL mid-append: a final line with no terminating '\n'.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "point 1 error 1 torn-tail";
  }
  // A resumed run must not let its first append merge with the torn tail
  // into one unparseable line (which a later resume would then drop,
  // recomputing the journaled failure).
  {
    CheckpointJournal journal(path, identity, /*fresh=*/false);
    journal.append({2, FailureKind::kTimeout, 1, "after-resume"});
  }
  const std::vector<CheckpointJournal::Entry> entries =
      CheckpointJournal::load(path, identity);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].message, "kept");
  EXPECT_EQ(entries[1].index, 2u);
  EXPECT_EQ(entries[1].kind, FailureKind::kTimeout);
  EXPECT_EQ(entries[1].message, "after-resume");
  // The torn bytes are gone from the file, not just skipped by load().
  EXPECT_EQ(slurp(path).find("torn-tail"), std::string::npos);
}

TEST(RobustCheckpointTest, GarbageLinesAreSkipped) {
  const std::string path = fresh_journal("garbage");
  const std::uint64_t identity = 99;
  {
    CheckpointJournal journal(path, identity, /*fresh=*/true);
    journal.append({0, FailureKind::kTimeout, 1, "kept"});
  }
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "not a journal line\n";
    out << "point NaN bogus\n";
  }
  const std::vector<CheckpointJournal::Entry> entries =
      CheckpointJournal::load(path, identity);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].message, "kept");
}

TEST(RobustCheckpointTest, FreshOpenTruncatesResumeOpenAppends) {
  const std::string path = fresh_journal("truncate");
  const std::uint64_t identity = 5;
  {
    CheckpointJournal journal(path, identity, /*fresh=*/true);
    journal.append({0, FailureKind::kError, 1, "old"});
  }
  {
    // Resume open keeps existing entries and appends after them.
    CheckpointJournal journal(path, identity, /*fresh=*/false);
    journal.append({1, FailureKind::kError, 1, "new"});
    EXPECT_EQ(journal.appended(), 1u);  // counts only this object's appends
  }
  EXPECT_EQ(CheckpointJournal::load(path, identity).size(), 2u);
  {
    // Fresh open wipes the journal and starts over.
    CheckpointJournal journal(path, identity, /*fresh=*/true);
  }
  EXPECT_TRUE(CheckpointJournal::load(path, identity).empty());
  const std::string bytes = slurp(path);
  EXPECT_NE(bytes.find("btmf-sweep-journal"), std::string::npos);
}

}  // namespace
}  // namespace btmf::robust
