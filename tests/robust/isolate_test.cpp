#include "btmf/robust/isolate.h"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <unistd.h>
#endif

#include "btmf/robust/failure.h"
#include "btmf/util/error.h"

namespace btmf::robust {
namespace {

#if defined(__unix__) || defined(__APPLE__)

TEST(RobustIsolateTest, SupportedOnPosixHosts) {
  EXPECT_TRUE(isolation_supported());
}

TEST(RobustIsolateTest, ValuesRoundTripBitExactThroughThePipe) {
  const double awkward = 1.0 / 3.0;  // non-terminating binary fraction
  const IsolatedOutcome outcome = run_isolated(
      [awkward] {
        return Values{{"ratio", awkward}, {"neg", -0.0}, {"big", 1e308}};
      },
      /*timeout_s=*/30.0);
  ASSERT_TRUE(outcome.failure.ok());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.values.at("ratio")),
            std::bit_cast<std::uint64_t>(awkward));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.values.at("neg")),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(outcome.values.at("big")),
            std::bit_cast<std::uint64_t>(1e308));
}

TEST(RobustIsolateTest, ChildFailureKindsPassThrough) {
  const IsolatedOutcome unsupported = run_isolated(
      []() -> Values { throw ConfigError("needs p > 0"); }, 30.0);
  EXPECT_EQ(unsupported.failure.kind, FailureKind::kUnsupported);
  EXPECT_EQ(unsupported.failure.message, "needs p > 0");

  const IsolatedOutcome error = run_isolated(
      []() -> Values { throw SolverError("multi\nline\ndiagnostic"); },
      30.0);
  EXPECT_EQ(error.failure.kind, FailureKind::kError);
  EXPECT_EQ(error.failure.message, "multi\nline\ndiagnostic");
}

TEST(RobustIsolateTest, SignalDeathIsContainedAsCrash) {
  const IsolatedOutcome outcome = run_isolated(
      []() -> Values {
        ::raise(SIGKILL);
        return {};
      },
      30.0);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kCrash);
  EXPECT_TRUE(outcome.values.empty());
}

TEST(RobustIsolateTest, ExitWithoutAReportIsACrash) {
  // A child that dies after partial output (e.g. the allocator aborting
  // mid-write) must not be mistaken for success.
  const IsolatedOutcome outcome = run_isolated(
      []() -> Values {
        ::_exit(0);  // vanish without completing the report
      },
      30.0);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kCrash);
}

TEST(RobustIsolateTest, DeadlineSigkillsTheChild) {
  const auto start = std::chrono::steady_clock::now();
  const IsolatedOutcome outcome = run_isolated(
      []() -> Values {
        // Hard hang: no cancellation points, no cooperation — only the
        // process boundary can stop this.
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
      },
      /*timeout_s=*/0.2);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(outcome.failure.kind, FailureKind::kTimeout);
  EXPECT_LT(elapsed, 30.0);  // was actually preempted, not waited out
}

#else

TEST(RobustIsolateTest, UnsupportedPlatformSaysSo) {
  EXPECT_FALSE(isolation_supported());
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace btmf::robust
