#include "btmf/robust/supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

#include "btmf/obs/metrics.h"
#include "btmf/robust/failure.h"
#include "btmf/robust/watchdog.h"
#include "btmf/util/error.h"

namespace btmf::robust {
namespace {

/// Instant-retry options: deterministic tests never sleep real backoff.
SupervisorOptions instant(unsigned retries) {
  SupervisorOptions options;
  options.retry.retries = retries;
  options.backoff_scale = 0.0;
  return options;
}

TEST(RobustSupervisorTest, InactiveOptionsRunInline) {
  const SupervisorOptions options;  // default: fully inert
  ASSERT_FALSE(options.active());
  const auto caller = std::this_thread::get_id();
  const SuperviseOutcome outcome = supervise(
      [&](const TaskContext& context) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(context.attempt, 0u);
        return Values{{"v", 7.0}};
      },
      options, /*key=*/1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_DOUBLE_EQ(outcome.values.at("v"), 7.0);
}

TEST(RobustSupervisorTest, InactiveOptionsStillClassifyExceptions) {
  const SuperviseOutcome outcome = supervise(
      [](const TaskContext&) -> Values { throw SolverError("diverged"); },
      SupervisorOptions{}, 1);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kError);
  EXPECT_EQ(outcome.failure.message, "diverged");
  EXPECT_EQ(outcome.attempts, 1u);
}

TEST(RobustSupervisorTest, RetriesUntilSuccessAndCountsAttempts) {
  obs::MetricsRegistry metrics;
  SupervisorOptions options = instant(5);
  options.metrics = &metrics;
  const SuperviseOutcome outcome = supervise(
      [](const TaskContext& context) -> Values {
        if (context.attempt < 2) throw SolverError("transient");
        return Values{{"v", static_cast<double>(context.attempt)}};
      },
      options, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_DOUBLE_EQ(outcome.values.at("v"), 2.0);
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("robust.retries"), 2u);
}

TEST(RobustSupervisorTest, ExhaustedRetriesReportTheLastFailure) {
  const SuperviseOutcome outcome = supervise(
      [](const TaskContext&) -> Values { throw SolverError("always"); },
      instant(2), 1);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kError);
  EXPECT_EQ(outcome.attempts, 3u);  // 1 try + 2 retries
}

TEST(RobustSupervisorTest, UnsupportedIsPermanentNoRetry) {
  std::atomic<int> calls{0};
  const SuperviseOutcome outcome = supervise(
      [&](const TaskContext&) -> Values {
        calls.fetch_add(1);
        throw ConfigError("shards must be 1");
      },
      instant(5), 1);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kUnsupported);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(calls.load(), 1);
}

TEST(RobustSupervisorTest, NonFiniteRejectionIsOptIn) {
  const Task task = [](const TaskContext& context) {
    return Values{
        {"v", context.attempt == 0
                  ? std::numeric_limits<double>::quiet_NaN()
                  : 1.25}};
  };
  // Default: NaN flows through untouched (bit-compat with old sweeps).
  const SuperviseOutcome lenient = supervise(task, SupervisorOptions{}, 1);
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(std::isnan(lenient.values.at("v")));
  // Opted in: first attempt rejected as kNonFinite, retry recovers.
  SupervisorOptions strict = instant(1);
  strict.reject_non_finite = true;
  const SuperviseOutcome healed = supervise(task, strict, 1);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.attempts, 2u);
  EXPECT_DOUBLE_EQ(healed.values.at("v"), 1.25);
  // And with no retries left it surfaces as the typed failure.
  SupervisorOptions no_retry;
  no_retry.reject_non_finite = true;
  const SuperviseOutcome rejected = supervise(task, no_retry, 1);
  EXPECT_EQ(rejected.failure.kind, FailureKind::kNonFinite);
}

TEST(RobustSupervisorTest, TimeoutsCountAndCooperativeRetryRecovers) {
  obs::MetricsRegistry metrics;
  SupervisorOptions options = instant(1);
  options.timeout_s = 0.05;
  options.grace_s = 5.0;
  options.metrics = &metrics;
  const SuperviseOutcome outcome = supervise(
      [](const TaskContext& context) -> Values {
        if (context.attempt == 0) {
          // First attempt: a well-behaved but too-slow loop.
          CancelToken* token = active_cancel_token();
          for (int i = 0; i < 10'000; ++i) {
            if (token != nullptr) token->checkpoint("test.slow");
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        return Values{{"v", 3.5}};
      },
      options, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.timeouts, 1u);
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("robust.timeouts"), 1u);
}

TEST(RobustSupervisorTest, AbandonedAttemptSurvivesTaskTeardown) {
  // Regression: supervise() must hand the watchdog an owning copy of the
  // Task — after abandonment the caller destroys the Task (and whatever
  // it captured) while the runaway worker is still executing it. ASan
  // flags a reference-capture regression here as a use-after-free.
  static std::atomic<bool> worker_done{false};
  worker_done = false;
  SupervisorOptions options;
  options.timeout_s = 0.05;
  options.grace_s = 0.05;
  SuperviseOutcome outcome;
  {
    const std::string payload(1024, 'y');
    const Task task = [payload](const TaskContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      Values values{{"len", static_cast<double>(payload.size())}};
      worker_done = true;
      return values;
    };
    outcome = supervise(task, options, /*key=*/1);
  }  // the Task and its captures die while the abandoned worker runs
  EXPECT_EQ(outcome.failure.kind, FailureKind::kTimeout);
  EXPECT_EQ(outcome.timeouts, 1u);
  for (int i = 0; i < 200 && !worker_done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(worker_done);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(RobustSupervisorTest, IsolatedCrashIsRetriedInAFreshWorker) {
  obs::MetricsRegistry metrics;
  SupervisorOptions options = instant(1);
  options.isolate = true;
  options.metrics = &metrics;
  const SuperviseOutcome outcome = supervise(
      [](const TaskContext& context) -> Values {
        // Each attempt forks anew, so branching on the attempt number is
        // how a "crashes once, then works" worker looks to the parent.
        if (context.attempt == 0) ::raise(SIGSEGV);
        return Values{{"v", 9.75}};
      },
      options, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.crashes, 1u);
  EXPECT_DOUBLE_EQ(outcome.values.at("v"), 9.75);
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("robust.crashes"), 1u);
}
#endif

TEST(RobustSupervisorTest, BackoffScaleZeroMakesRetriesInstant) {
  const auto start = std::chrono::steady_clock::now();
  SupervisorOptions options = instant(3);
  options.retry.base_delay_s = 10.0;  // would sleep ~70 s unscaled
  const SuperviseOutcome outcome = supervise(
      [](const TaskContext&) -> Values { throw SolverError("always"); },
      options, 1);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(outcome.ok());
  EXPECT_LT(elapsed, 5.0);
}

}  // namespace
}  // namespace btmf::robust
