#include "btmf/robust/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "btmf/robust/failure.h"
#include "btmf/util/error.h"

namespace btmf::robust {
namespace {

TEST(RobustWatchdogTest, NoDeadlineRunsInlineWithoutAToken) {
  // timeout_s <= 0 must be the zero-overhead path: same thread, no token
  // installed — indistinguishable from unsupervised code.
  const auto caller = std::this_thread::get_id();
  const WatchdogResult result = run_with_deadline(
      [&] {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(active_cancel_token(), nullptr);
        return Values{{"x", 1.5}};
      },
      0.0);
  ASSERT_TRUE(result.failure.ok());
  EXPECT_FALSE(result.abandoned);
  EXPECT_DOUBLE_EQ(result.values.at("x"), 1.5);
}

TEST(RobustWatchdogTest, FastFunctionBeatsTheDeadline) {
  const WatchdogResult result = run_with_deadline(
      [] {
        EXPECT_NE(active_cancel_token(), nullptr);
        return Values{{"x", 2.0}, {"y", 0.1}};
      },
      30.0);
  ASSERT_TRUE(result.failure.ok());
  EXPECT_FALSE(result.abandoned);
  EXPECT_DOUBLE_EQ(result.values.at("y"), 0.1);
}

TEST(RobustWatchdogTest, CooperativeWorkerUnwindsAsTimeout) {
  const WatchdogResult result = run_with_deadline(
      [] {
        CancelToken* token = active_cancel_token();
        EXPECT_NE(token, nullptr);
        // A well-behaved solver loop: polls its cancellation point.
        for (int i = 0; i < 10'000; ++i) {
          token->checkpoint("test.loop");
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return Values{{"never", 0.0}};
      },
      0.05, /*grace_s=*/5.0);
  EXPECT_EQ(result.failure.kind, FailureKind::kTimeout);
  EXPECT_FALSE(result.abandoned);
  EXPECT_TRUE(result.values.empty());
}

TEST(RobustWatchdogTest, UncooperativeWorkerIsAbandoned) {
  const WatchdogResult result = run_with_deadline(
      [] {
        // Never looks at the token: cannot be stopped, only abandoned.
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return Values{{"late", 1.0}};
      },
      0.05, /*grace_s=*/0.05);
  EXPECT_EQ(result.failure.kind, FailureKind::kTimeout);
  EXPECT_TRUE(result.abandoned);
  // Let the runaway worker finish before the test binary exits so leak
  // checkers see a quiescent process.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
}

TEST(RobustWatchdogTest, AbandonedWorkerOwnsItsTaskChain) {
  // Regression: an abandoned worker runs a *copy* of `fn` after the
  // caller's frame — including the original std::function and everything
  // it captured — is gone. Under ASan a capture-by-reference regression
  // anywhere in the chain turns this test into a hard use-after-free.
  static std::atomic<bool> worker_done{false};
  worker_done = false;
  WatchdogResult result;
  {
    const std::string payload(1024, 'x');  // heap-backed caller local
    const std::function<Values()> fn = [payload] {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      // Touched after the caller's scope below has been destroyed.
      Values values{{"len", static_cast<double>(payload.size())}};
      worker_done = true;
      return values;
    };
    result = run_with_deadline(fn, 0.05, /*grace_s=*/0.05);
  }  // `payload` and `fn` die here while the abandoned worker still runs
  EXPECT_EQ(result.failure.kind, FailureKind::kTimeout);
  EXPECT_TRUE(result.abandoned);
  // Let the runaway worker finish its copy of the chain before the test
  // ends, so the access above actually happens (and quiesces for leak
  // checkers).
  for (int i = 0; i < 200 && !worker_done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(worker_done);
}

TEST(RobustWatchdogTest, ExceptionsClassifyThroughTheWatchdog) {
  const WatchdogResult unsupported = run_with_deadline(
      []() -> Values { throw ConfigError("k must be >= 1"); }, 10.0);
  EXPECT_EQ(unsupported.failure.kind, FailureKind::kUnsupported);
  EXPECT_EQ(unsupported.failure.message, "k must be >= 1");

  const WatchdogResult solver = run_with_deadline(
      []() -> Values { throw SolverError("diverged"); }, 10.0);
  EXPECT_EQ(solver.failure.kind, FailureKind::kError);
}

TEST(RobustWatchdogTest, ScopedTokenInstallsAndRestores) {
  EXPECT_EQ(active_cancel_token(), nullptr);
  CancelToken outer;
  {
    ScopedCancelToken outer_guard(&outer);
    EXPECT_EQ(active_cancel_token(), &outer);
    CancelToken inner;
    {
      ScopedCancelToken inner_guard(&inner);
      EXPECT_EQ(active_cancel_token(), &inner);
      inner.cancel();
      EXPECT_THROW(inner.checkpoint("nested"), CancelledError);
    }
    EXPECT_EQ(active_cancel_token(), &outer);
    EXPECT_NO_THROW(outer.checkpoint("outer"));
  }
  EXPECT_EQ(active_cancel_token(), nullptr);
}

}  // namespace
}  // namespace btmf::robust
