#include "btmf/robust/retry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace btmf::robust {
namespace {

TEST(RobustRetryTest, BackoffIsDeterministicPerKeyAndAttempt) {
  const RetryPolicy policy;
  for (const std::uint64_t key : {0ULL, 1ULL, 0xdeadbeefULL}) {
    for (unsigned attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_EQ(backoff_delay_s(policy, key, attempt),
                backoff_delay_s(policy, key, attempt))
          << "key " << key << " attempt " << attempt;
    }
  }
}

TEST(RobustRetryTest, BackoffGrowsExponentiallyWithinJitterBand) {
  RetryPolicy policy;
  policy.base_delay_s = 0.1;
  policy.growth = 2.0;
  policy.max_delay_s = 1e9;  // no cap for this test
  policy.jitter = 0.25;
  for (unsigned attempt = 1; attempt <= 6; ++attempt) {
    const double nominal = 0.1 * std::pow(2.0, attempt - 1);
    const double delay = backoff_delay_s(policy, 42, attempt);
    EXPECT_GE(delay, nominal * 0.75) << "attempt " << attempt;
    EXPECT_LE(delay, nominal * 1.25) << "attempt " << attempt;
  }
}

TEST(RobustRetryTest, BackoffRespectsMaxDelayCap) {
  RetryPolicy policy;
  policy.base_delay_s = 1.0;
  policy.growth = 10.0;
  policy.max_delay_s = 3.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 7, 1), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 7, 2), 3.0);
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 7, 5), 3.0);
}

TEST(RobustRetryTest, JitterDesynchronisesDistinctKeys) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  // Not a randomness test — just that the jitter actually depends on the
  // key, so a thundering herd of identical retries spreads out.
  bool any_differ = false;
  for (std::uint64_t key = 0; key < 16 && !any_differ; ++key) {
    any_differ = backoff_delay_s(policy, key, 1) !=
                 backoff_delay_s(policy, key + 1, 1);
  }
  EXPECT_TRUE(any_differ);
}

TEST(RobustRetryTest, SplitmixIsAStableMixer) {
  // Pin two reference values of the standard splitmix64 finalizer so the
  // jitter stream (and therefore recorded backoff traces) never silently
  // changes across refactors.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

}  // namespace
}  // namespace btmf::robust
