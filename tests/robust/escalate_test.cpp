#include "btmf/robust/escalate.h"

#include <gtest/gtest.h>

#include "btmf/model/spec.h"

namespace btmf::robust {
namespace {

TEST(RobustEscalateTest, AttemptZeroIsTheSpecUnchanged) {
  model::ScenarioSpec spec;
  const model::ScenarioSpec out = escalate_spec(spec, 0);
  EXPECT_EQ(out.fingerprint(), spec.fingerprint());
}

TEST(RobustEscalateTest, EachRungTightensTheSolver) {
  model::ScenarioSpec spec;
  const model::ScenarioSpec r1 = escalate_spec(spec, 1);
  EXPECT_LT(r1.solver.ode.rtol, spec.solver.ode.rtol);
  EXPECT_LT(r1.solver.ode.atol, spec.solver.ode.atol);
  EXPECT_GT(r1.solver.ode.max_steps, spec.solver.ode.max_steps);
  EXPECT_GT(r1.solver.max_chunks, spec.solver.max_chunks);
  EXPECT_GT(r1.solver.chunk_time, spec.solver.chunk_time);
  const model::ScenarioSpec r2 = escalate_spec(spec, 2);
  EXPECT_LE(r2.solver.ode.rtol, r1.solver.ode.rtol);
  EXPECT_GT(r2.solver.max_chunks, r1.solver.max_chunks);
}

TEST(RobustEscalateTest, TolerancesFloorInsteadOfUnderflowing) {
  model::ScenarioSpec spec;
  const model::ScenarioSpec deep = escalate_spec(spec, 20);
  EXPECT_GE(deep.solver.ode.rtol, 1e-13);
  EXPECT_GE(deep.solver.ode.atol, 1e-14);
}

TEST(RobustEscalateTest, RungIsAPureFunctionOfSpecAndAttempt) {
  model::ScenarioSpec spec;
  spec.correlation = 0.7;
  const model::ScenarioSpec a = escalate_spec(spec, 3);
  const model::ScenarioSpec b = escalate_spec(spec, 3);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.solver.ode.rtol, b.solver.ode.rtol);
  // Escalation only touches solver knobs, never the scenario itself.
  EXPECT_EQ(a.correlation, spec.correlation);
  EXPECT_EQ(a.num_files, spec.num_files);
}

}  // namespace
}  // namespace btmf::robust
