#include "btmf/robust/failure.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "btmf/util/error.h"

namespace btmf::robust {
namespace {

TEST(RobustFailureTest, KindStringsRoundTrip) {
  for (const FailureKind kind :
       {FailureKind::kNone, FailureKind::kError, FailureKind::kTimeout,
        FailureKind::kCrash, FailureKind::kNonFinite,
        FailureKind::kUnsupported, FailureKind::kCacheCorrupt}) {
    EXPECT_EQ(failure_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)failure_kind_from_string("gremlins"), ConfigError);
}

TEST(RobustFailureTest, OnlyPermanentKindsAreNotRetryable) {
  EXPECT_FALSE(retryable(FailureKind::kNone));
  EXPECT_FALSE(retryable(FailureKind::kUnsupported));
  EXPECT_TRUE(retryable(FailureKind::kError));
  EXPECT_TRUE(retryable(FailureKind::kTimeout));
  EXPECT_TRUE(retryable(FailureKind::kCrash));
  EXPECT_TRUE(retryable(FailureKind::kNonFinite));
  EXPECT_TRUE(retryable(FailureKind::kCacheCorrupt));
}

Failure classify(const std::function<void()>& thrower) {
  try {
    thrower();
  } catch (...) {
    return classify_active_exception();
  }
  ADD_FAILURE() << "thrower did not throw";
  return {};
}

TEST(RobustFailureTest, ClassifiesActiveExceptions) {
  EXPECT_EQ(classify([] { throw CancelledError("deadline"); }).kind,
            FailureKind::kTimeout);
  EXPECT_EQ(classify([] { throw ConfigError("bad knob"); }).kind,
            FailureKind::kUnsupported);
  EXPECT_EQ(classify([] { throw SolverError("diverged"); }).kind,
            FailureKind::kError);
  EXPECT_EQ(classify([] { throw std::runtime_error("plain"); }).kind,
            FailureKind::kError);
  const Failure failure = classify([] { throw SolverError("diverged"); });
  EXPECT_EQ(failure.message, "diverged");
  EXPECT_FALSE(failure.ok());
}

TEST(RobustFailureTest, EscapeLineRoundTripsHostileMessages) {
  const std::string hostile =
      "first line\nsecond \\ line\r\nwith \\n literal backslash-n";
  const std::string escaped = escape_line(hostile);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  EXPECT_EQ(unescape_line(escaped), hostile);
  EXPECT_EQ(unescape_line(escape_line("")), "");
  EXPECT_EQ(unescape_line(escape_line("plain")), "plain");
}

}  // namespace
}  // namespace btmf::robust
