// Minimal recursive-descent JSON well-formedness checker for the obs
// tests: no external JSON dependency, just enough to assert that emitted
// documents parse (objects, arrays, strings, numbers, literals). Returns
// false on trailing garbage too.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace btmf::obs::test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    const bool ok = value();
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = true;
      ++pos_;
    }
    if (!digits) pos_ = start;
    return digits;
  }

  bool literal(const char* word) {
    skip_ws();
    std::size_t i = 0;
    while (word[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      if (!string()) return false;
      if (!consume(':')) return false;
      if (!value()) return false;
    } while (consume(','));
    return consume('}');
  }

  bool array() {
    if (!consume('[')) return false;
    if (consume(']')) return true;
    do {
      if (!value()) return false;
    } while (consume(','));
    return consume(']');
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline bool json_parses(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace btmf::obs::test
