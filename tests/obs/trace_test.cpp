// TraceWriter: emitted Chrome trace_event JSON must parse and nested
// spans must stay properly contained in their parent's interval.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "btmf/obs/trace.h"
#include "btmf/util/error.h"
#include "json_check.h"

namespace btmf::obs {
namespace {

// Pulls `"key": <number>` out of the event line holding `"name": "<name>"`.
std::uint64_t event_field(const std::string& json, const std::string& name,
                          const std::string& key) {
  const std::size_t at = json.find("\"name\": \"" + name + "\"");
  EXPECT_NE(at, std::string::npos) << "no event named " << name;
  const std::size_t field = json.find("\"" + key + "\": ", at);
  EXPECT_NE(field, std::string::npos) << key << " missing on " << name;
  return std::strtoull(json.c_str() + field + key.size() + 4, nullptr, 10);
}

TEST(ObsTrace, SpanEmitsCompleteEvent) {
  TraceWriter trace("test");
  {
    TraceWriter::Span span = trace.span("kernel.dispatch");
    span.set_args(R"({"rounds": 1024})");
  }
  EXPECT_EQ(trace.event_count(), 1u);
  const std::string json = trace.to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"kernel.dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\": 1024"), std::string::npos);
}

TEST(ObsTrace, NestedSpansStayContained) {
  TraceWriter trace("test");
  TraceWriter::Span outer = trace.span("outer");
  {
    TraceWriter::Span inner = trace.span("inner");
    // Spin until the clock visibly advances so the intervals are distinct.
    const std::uint64_t start = trace.now_us();
    while (trace.now_us() - start < 200) {
    }
  }
  outer.end();
  const std::string json = trace.to_json();
  ASSERT_TRUE(test::json_parses(json)) << json;
  const std::uint64_t outer_ts = event_field(json, "outer", "ts");
  const std::uint64_t outer_end = outer_ts + event_field(json, "outer", "dur");
  const std::uint64_t inner_ts = event_field(json, "inner", "ts");
  const std::uint64_t inner_end = inner_ts + event_field(json, "inner", "dur");
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_GT(inner_end, inner_ts);  // the spin made the inner span nonzero
}

TEST(ObsTrace, EndIsIdempotentAndMoveTransfersOwnership) {
  TraceWriter trace("test");
  TraceWriter::Span a = trace.span("step");
  TraceWriter::Span b = std::move(a);
  b.end();
  b.end();  // second end is a no-op
  EXPECT_EQ(trace.event_count(), 1u);  // the moved-from span emits nothing
}

TEST(ObsTrace, InstantAndCounterEvents) {
  TraceWriter trace("test");
  trace.instant("fault.tracker_down", R"({"sim_t": 500})");
  trace.counter("live_peers", 321.0);
  const std::string json = trace.to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_t\": 500"), std::string::npos);
}

TEST(ObsTrace, MetadataNamesTheProcess) {
  TraceWriter trace("btmf_tool simulate");
  const std::string json = trace.to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("btmf_tool simulate"), std::string::npos);
}

TEST(ObsTrace, WriteFileRoundTripAndFailure) {
  TraceWriter trace("test");
  trace.instant("marker");
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  trace.write_file(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(test::json_parses(buffer.str()));
  std::remove(path.c_str());
  EXPECT_THROW(trace.write_file("/nonexistent-dir/trace.json"), IoError);
}

}  // namespace
}  // namespace btmf::obs
