// End-to-end telemetry: attaching obs sinks to the simulators and
// solvers must never perturb results, and every sink must come back
// filled — counters matching SimResult, series covering the horizon,
// traces that parse.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "btmf/math/equilibrium.h"
#include "btmf/obs/sink.h"
#include "btmf/sim/chunk_sim.h"
#include "btmf/sim/simulator.h"
#include "json_check.h"

namespace btmf::sim {
namespace {

SimConfig base_config() {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kCmfsd;
  c.rho = 0.3;
  c.num_files = 4;
  c.correlation = 0.5;
  c.visit_rate = 2.0;
  c.horizon = 600.0;
  c.warmup = 150.0;
  c.seed = 77;
  return c;
}

TEST(ObsSim, InertByDefault) {
  // Attaching every sink must leave the simulation bit-identical:
  // observation draws no randomness and changes no event times.
  const SimConfig plain = base_config();
  const SimResult a = run_simulation(plain);

  obs::MetricsRegistry metrics;
  obs::TimeSeriesRecorder recorder;
  obs::TraceWriter trace;
  SimConfig observed = base_config();
  observed.obs.metrics = &metrics;
  observed.obs.recorder = &recorder;
  observed.obs.trace = &trace;
  const SimResult b = run_simulation(observed);

  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.total_users, b.total_users);
  EXPECT_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.avg_download_per_file, b.avg_download_per_file);
  EXPECT_EQ(a.peak_live_peers, b.peak_live_peers);
  EXPECT_EQ(a.rho_trajectory_time, b.rho_trajectory_time);
  EXPECT_EQ(a.rho_trajectory_mean, b.rho_trajectory_mean);
  EXPECT_EQ(a.population_time, b.population_time);
  EXPECT_EQ(a.downloaders_trajectory, b.downloaders_trajectory);
  EXPECT_EQ(a.seeds_trajectory, b.seeds_trajectory);
}

TEST(ObsSim, PopulationTrajectoriesCoverTheHorizon) {
  const SimConfig c = base_config();
  const SimResult r = run_simulation(c);
  ASSERT_FALSE(r.population_time.empty());
  EXPECT_EQ(r.population_time.front(), 0.0);
  EXPECT_EQ(r.population_time.back(), c.horizon);
  ASSERT_EQ(r.downloaders_trajectory.size(), r.classes.size());
  ASSERT_EQ(r.seeds_trajectory.size(), r.classes.size());
  for (std::size_t k = 0; k < r.classes.size(); ++k) {
    EXPECT_EQ(r.downloaders_trajectory[k].size(), r.population_time.size());
    EXPECT_EQ(r.seeds_trajectory[k].size(), r.population_time.size());
  }
}

TEST(ObsSim, SampleDtSetsTheCadence) {
  SimConfig c = base_config();
  c.obs.sample_dt = 50.0;  // 0, 50, ..., 600: exactly 13 samples
  const SimResult r = run_simulation(c);
  ASSERT_EQ(r.population_time.size(), 13u);
  EXPECT_EQ(r.population_time[1], 50.0);
  EXPECT_EQ(r.population_time.back(), c.horizon);
}

TEST(ObsSim, MetricsCountersMatchTheResult) {
  obs::MetricsRegistry metrics;
  SimConfig c = base_config();
  c.obs.metrics = &metrics;
  const SimResult r = run_simulation(c);
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("sim.events"), r.events_processed);
  EXPECT_EQ(snap.counters.at("sim.arrivals"), r.total_arrivals);
  EXPECT_EQ(snap.counters.at("sim.users_completed"), r.total_users);
  EXPECT_EQ(snap.counters.at("sim.users_censored"), r.censored_users);
  EXPECT_EQ(snap.counters.at("sim.rate_epochs"), r.rate_epochs);
  EXPECT_EQ(snap.gauges.at("sim.peak_live_peers"),
            static_cast<double>(r.peak_live_peers));
  // Every retired user lands in the online-time histogram.
  EXPECT_EQ(snap.histograms.at("sim.user_online_per_file").count,
            r.total_users);
}

TEST(ObsSim, RecorderReceivesSeriesSpanningTheRun) {
  obs::MetricsRegistry metrics;
  obs::TimeSeriesRecorder recorder;
  SimConfig c = base_config();
  c.adapt.enabled = true;
  c.obs.metrics = &metrics;
  c.obs.recorder = &recorder;
  const SimResult r = run_simulation(c);
  const auto all = recorder.all();
  for (const std::string name :
       {"sim.live_peers", "sim.downloaders.c1", "sim.seeds.c1",
        "sim.readmission_queue", "adapt.rho_mean"}) {
    ASSERT_EQ(all.count(name), 1u) << name;
  }
  const obs::SeriesData& live = all.at("sim.live_peers");
  ASSERT_FALSE(live.t.empty());
  EXPECT_EQ(live.t.front(), 0.0);
  EXPECT_EQ(live.t.back(), c.horizon);
  // The exported series mirrors SimResult's trajectory view exactly.
  EXPECT_EQ(all.at("sim.downloaders.c1").v, r.downloaders_trajectory[0]);
  EXPECT_EQ(all.at("adapt.rho_mean").v, r.rho_trajectory_mean);
}

TEST(ObsSim, KernelTraceParsesWithDispatchSpans) {
  obs::TraceWriter trace("obs_sim_test");
  SimConfig c = base_config();
  c.obs.trace = &trace;
  c.obs.trace_batch = 256;
  run_simulation(c);
  EXPECT_GT(trace.event_count(), 0u);
  const std::string json = trace.to_json();
  EXPECT_TRUE(obs::test::json_parses(json));
  EXPECT_NE(json.find("\"kernel.dispatch\""), std::string::npos);
}

TEST(ObsSim, ChunkSimFillsItsSinks) {
  obs::MetricsRegistry metrics;
  obs::TimeSeriesRecorder recorder;
  ChunkSimConfig c;
  c.horizon = 400.0;
  c.warmup = 100.0;
  c.obs.metrics = &metrics;
  c.obs.recorder = &recorder;
  const ChunkSimResult plain_result = [] {
    ChunkSimConfig plain;
    plain.horizon = 400.0;
    plain.warmup = 100.0;
    return run_chunk_sim(plain);
  }();
  const ChunkSimResult r = run_chunk_sim(c);
  // Observation is inert here too.
  EXPECT_EQ(r.completed_peers, plain_result.completed_peers);
  EXPECT_EQ(r.emergent_eta, plain_result.emergent_eta);
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GT(snap.counters.at("chunk.slots"), 0u);
  const auto all = recorder.all();
  ASSERT_EQ(all.count("chunk.availability"), 1u);
  EXPECT_FALSE(all.at("chunk.downloaders").t.empty());
}

TEST(ObsSim, SolverSpansEmitted) {
  obs::TraceWriter trace("solver");
  math::EquilibriumOptions options;
  options.trace = &trace;
  const math::OdeRhs rhs = [](double, std::span<const double> y,
                              std::span<double> f) {
    f[0] = 1.0 - y[0];  // fixed point at y = 1
  };
  const math::EquilibriumResult eq =
      math::find_equilibrium(rhs, {4.0}, options);
  EXPECT_NEAR(eq.y[0], 1.0, 1e-6);
  const std::string json = trace.to_json();
  EXPECT_TRUE(obs::test::json_parses(json));
  EXPECT_NE(json.find("\"equilibrium.rung\""), std::string::npos);
  EXPECT_NE(json.find("\"ode.integrate\""), std::string::npos);
}

}  // namespace
}  // namespace btmf::sim
