// MetricsRegistry: exact counters across threads, log-linear histogram
// geometry, and deterministic snapshots for deterministic workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "btmf/obs/metrics.h"
#include "btmf/util/error.h"
#include "json_check.h"

namespace btmf::obs {
namespace {

TEST(ObsMetrics, CounterAccumulatesExactly) {
  MetricsRegistry reg;
  const MetricId events = reg.counter("sim.events");
  reg.add(events);
  reg.add(events, 41);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("sim.events"), 1u);
  EXPECT_EQ(snap.counters.at("sim.events"), 42u);
}

TEST(ObsMetrics, CountersExactAcrossThreads) {
  MetricsRegistry reg;
  const MetricId id = reg.counter("pool.tasks");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg, id] {
      for (std::uint64_t j = 0; j < kAddsPerThread; ++j) reg.add(id);
    });
  }
  for (std::thread& t : threads) t.join();
  // Shards are retained by the registry, so counts survive thread exit.
  EXPECT_EQ(reg.snapshot().counters.at("pool.tasks"),
            kThreads * kAddsPerThread);
}

TEST(ObsMetrics, GaugeLastWriteWins) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("sim.peak_live_peers");
  reg.set(g, 10.0);
  reg.set(g, 250.5);
  EXPECT_EQ(reg.snapshot().gauges.at("sim.peak_live_peers"), 250.5);
}

TEST(ObsMetrics, HistogramStatsAndQuantiles) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("sim.user_online_per_file");
  for (int i = 1; i <= 100; ++i) reg.observe(h, static_cast<double>(i));
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSnapshot& hist = snap.histograms.at("sim.user_online_per_file");
  EXPECT_EQ(hist.count, 100u);
  EXPECT_DOUBLE_EQ(hist.sum, 5050.0);
  EXPECT_DOUBLE_EQ(hist.min, 1.0);
  EXPECT_DOUBLE_EQ(hist.max, 100.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
  // Log-linear buckets bound relative error: quantiles land near truth.
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 50.0 * 0.15);
  EXPECT_NEAR(hist.quantile(0.9), 90.0, 90.0 * 0.15);
  // Quantiles are clamped to the observed range.
  EXPECT_GE(hist.quantile(0.0), hist.min);
  EXPECT_LE(hist.quantile(1.0), hist.max);
}

TEST(ObsMetrics, BucketGeometryBracketsSamples) {
  for (const double v : {1e-5, 0.02, 0.5, 1.0, 3.7, 1024.0, 9.9e8}) {
    const std::size_t b = MetricsRegistry::bucket_index(v);
    EXPECT_GT(b, 0u) << v;
    EXPECT_LT(b, MetricsRegistry::kNumBuckets - 1) << v;
    EXPECT_GE(v, MetricsRegistry::bucket_lower(b)) << v;
    EXPECT_LT(v, MetricsRegistry::bucket_upper(b)) << v;
  }
  // Non-positive values underflow; absurdly large ones overflow.
  EXPECT_EQ(MetricsRegistry::bucket_index(0.0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(-3.0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(1e300),
            MetricsRegistry::kNumBuckets - 1);
}

TEST(ObsMetrics, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("sim.events");
  EXPECT_THROW(reg.gauge("sim.events"), ConfigError);
  EXPECT_THROW(reg.histogram("sim.events"), ConfigError);
  // Same kind re-registration returns the same id.
  EXPECT_EQ(reg.counter("sim.events"), reg.counter("sim.events"));
}

TEST(ObsMetrics, SnapshotDeterministicForFixedSeed) {
  // Two registries fed the identical seeded workload serialise
  // identically — the property the bench baselines rely on.
  const auto drive = [](MetricsRegistry& reg) {
    std::mt19937_64 rng(2025);
    std::uniform_real_distribution<double> dist(0.001, 500.0);
    const MetricId c = reg.counter("sim.events");
    const MetricId g = reg.gauge("sim.peak");
    const MetricId h = reg.histogram("sim.online");
    for (int i = 0; i < 5000; ++i) {
      const double x = dist(rng);
      reg.add(c, static_cast<std::uint64_t>(i % 3));
      reg.set(g, x);
      reg.observe(h, x);
    }
    return reg.snapshot().to_json();
  };
  MetricsRegistry a;
  MetricsRegistry b;
  EXPECT_EQ(drive(a), drive(b));
}

TEST(ObsMetrics, SnapshotJsonParses) {
  MetricsRegistry reg;
  reg.add(reg.counter("sim.events"), 7);
  reg.set(reg.gauge("sim.time_to_recover"), 12.75);
  const MetricId h = reg.histogram("sim.user_files");
  reg.observe(h, 1.0);
  reg.observe(h, 4.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace btmf::obs
