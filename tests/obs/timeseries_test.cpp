// TimeSeriesRecorder: budgeted decimation must preserve the recorded
// interval's endpoints and sample order at any budget.
#include <gtest/gtest.h>

#include <cstddef>

#include "btmf/obs/timeseries.h"
#include "btmf/util/error.h"
#include "json_check.h"

namespace btmf::obs {
namespace {

TEST(ObsSeries, AppendAndReadBack) {
  TimeSeriesRecorder rec;
  const SeriesId id = rec.series("sim.live_peers");
  rec.append(id, 0.0, 3.0);
  rec.append(id, 1.5, 5.0);
  const SeriesData data = rec.data(id);
  ASSERT_EQ(data.t.size(), 2u);
  EXPECT_EQ(data.t[1], 1.5);
  EXPECT_EQ(data.v[1], 5.0);
  EXPECT_EQ(data.decimations, 0u);
}

TEST(ObsSeries, BackwardsTimestampThrows) {
  TimeSeriesRecorder rec;
  const SeriesId id = rec.series("sim.live_peers");
  rec.append(id, 10.0, 1.0);
  EXPECT_THROW(rec.append(id, 9.0, 2.0), ConfigError);
  rec.append(id, 10.0, 3.0);  // equal timestamps are allowed (step edges)
}

TEST(ObsSeries, DecimationPreservesEndpointsAndOrder) {
  TimeSeriesRecorder rec;
  const std::size_t kBudget = 16;
  const SeriesId id = rec.series("sim.downloaders.c1", kBudget);
  const std::size_t kSamples = 1000;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double t = static_cast<double>(i) * 0.25;
    rec.append(id, t, 2.0 * t);  // v = f(t) so pairs stay checkable
  }
  const SeriesData data = rec.data(id);
  ASSERT_GE(data.t.size(), 2u);
  EXPECT_LE(data.t.size(), kBudget);
  EXPECT_GT(data.decimations, 0u);
  // First and last appended samples survive every decimation pass.
  EXPECT_EQ(data.t.front(), 0.0);
  EXPECT_EQ(data.t.back(), static_cast<double>(kSamples - 1) * 0.25);
  for (std::size_t i = 0; i < data.t.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(data.t[i - 1], data.t[i]);  // monotone timestamps
    }
    EXPECT_EQ(data.v[i], 2.0 * data.t[i]);  // (t, v) pairs intact
  }
}

TEST(ObsSeries, BudgetZeroIsUnbounded) {
  TimeSeriesRecorder rec(0);
  const SeriesId id = rec.series("adapt.rho_mean");
  for (int i = 0; i < 10'000; ++i) {
    rec.append(id, static_cast<double>(i), 0.5);
  }
  const SeriesData data = rec.data(id);
  EXPECT_EQ(data.t.size(), 10'000u);
  EXPECT_EQ(data.decimations, 0u);
}

TEST(ObsSeries, ImportReplacesWholesaleLastWins) {
  TimeSeriesRecorder rec;
  rec.import_series("sim.live_peers", {0.0, 1.0}, {2.0, 3.0});
  rec.import_series("sim.live_peers", {0.0, 5.0, 9.0}, {1.0, 4.0, 2.0});
  const SeriesData data = rec.data(rec.series("sim.live_peers"));
  ASSERT_EQ(data.t.size(), 3u);
  EXPECT_EQ(data.t.back(), 9.0);
  EXPECT_EQ(data.v.back(), 2.0);
}

TEST(ObsSeries, JsonFragmentParses) {
  TimeSeriesRecorder rec;
  const SeriesId id = rec.series("sim.seeds.c2");
  rec.append(id, 0.0, 0.0);
  rec.append(id, 2.5, 7.0);
  const std::string json = rec.to_json();
  EXPECT_TRUE(test::json_parses(json)) << json;
  EXPECT_NE(json.find("\"sim.seeds.c2\""), std::string::npos);
  EXPECT_NE(json.find("\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"v\""), std::string::npos);
}

}  // namespace
}  // namespace btmf::obs
