#include "btmf/fluid/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(CorrelationTest, InvalidParametersThrow) {
  EXPECT_THROW((void)CorrelationModel(0, 0.5, 1.0), ConfigError);
  EXPECT_THROW((void)CorrelationModel(10, -0.1, 1.0), ConfigError);
  EXPECT_THROW((void)CorrelationModel(10, 1.1, 1.0), ConfigError);
  EXPECT_THROW((void)CorrelationModel(10, 0.5, 0.0), ConfigError);
}

TEST(CorrelationTest, SystemRatesAreBinomial) {
  const CorrelationModel m(10, 0.3, 2.0);
  // L_3 = 2 * C(10,3) * 0.3^3 * 0.7^7.
  const double expected =
      2.0 * 120.0 * std::pow(0.3, 3) * std::pow(0.7, 7);
  EXPECT_NEAR(m.system_entry_rate(3), expected, 1e-12);
}

TEST(CorrelationTest, PerTorrentRateIsSystemRateTimesIOverK) {
  const CorrelationModel m(10, 0.4, 1.5);
  for (unsigned i = 1; i <= 10; ++i) {
    EXPECT_NEAR(m.per_torrent_entry_rate(i),
                m.system_entry_rate(i) * i / 10.0, 1e-12)
        << "class " << i;
  }
}

TEST(CorrelationTest, PerTorrentTotalRateClosure) {
  // sum_l lambda_j^l = lambda0 * p (verified against the explicit sum).
  for (const double p : {0.05, 0.3, 0.7, 1.0}) {
    const CorrelationModel m(10, p, 3.0);
    double total = 0.0;
    for (unsigned i = 1; i <= 10; ++i) total += m.per_torrent_entry_rate(i);
    EXPECT_NEAR(total, m.per_torrent_total_rate(), 1e-12) << "p=" << p;
    EXPECT_NEAR(total, 3.0 * p, 1e-12) << "p=" << p;
  }
}

TEST(CorrelationTest, PerTorrentWeightedRateClosure) {
  // sum_l lambda_j^l / l = (lambda0/K)(1 - (1-p)^K).
  for (const double p : {0.05, 0.3, 0.7, 1.0}) {
    const CorrelationModel m(10, p, 3.0);
    double weighted = 0.0;
    for (unsigned i = 1; i <= 10; ++i) {
      weighted += m.per_torrent_entry_rate(i) / i;
    }
    EXPECT_NEAR(weighted, m.per_torrent_weighted_rate(), 1e-12) << "p=" << p;
  }
}

TEST(CorrelationTest, SystemUserRateIsOneMinusMissAll) {
  const CorrelationModel m(10, 0.25, 2.0);
  double total = 0.0;
  for (unsigned i = 1; i <= 10; ++i) total += m.system_entry_rate(i);
  EXPECT_NEAR(total, m.system_user_rate(), 1e-12);
  EXPECT_NEAR(total, 2.0 * (1.0 - std::pow(0.75, 10)), 1e-12);
}

TEST(CorrelationTest, FileRequestRateIsLambdaKP) {
  const CorrelationModel m(10, 0.25, 2.0);
  double total = 0.0;
  for (unsigned i = 1; i <= 10; ++i) total += i * m.system_entry_rate(i);
  EXPECT_NEAR(total, m.system_file_request_rate(), 1e-12);
  EXPECT_NEAR(total, 2.0 * 10.0 * 0.25, 1e-12);
}

TEST(CorrelationTest, PEqualsOneConcentratesOnClassK) {
  const CorrelationModel m(10, 1.0, 1.0);
  for (unsigned i = 1; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.system_entry_rate(i), 0.0);
  }
  EXPECT_DOUBLE_EQ(m.system_entry_rate(10), 1.0);
  EXPECT_DOUBLE_EQ(m.per_torrent_entry_rate(10), 1.0);
}

TEST(CorrelationTest, PEqualsZeroProducesNoUsers) {
  const CorrelationModel m(10, 0.0, 1.0);
  for (unsigned i = 1; i <= 10; ++i) {
    EXPECT_DOUBLE_EQ(m.system_entry_rate(i), 0.0);
    EXPECT_DOUBLE_EQ(m.per_torrent_entry_rate(i), 0.0);
  }
  EXPECT_DOUBLE_EQ(m.system_user_rate(), 0.0);
}

TEST(CorrelationTest, SingleFileDegenerate) {
  const CorrelationModel m(1, 0.6, 2.0);
  EXPECT_NEAR(m.system_entry_rate(1), 1.2, 1e-12);
  EXPECT_NEAR(m.per_torrent_entry_rate(1), 1.2, 1e-12);
}

TEST(CorrelationTest, ClassIndexOutOfRangeThrows) {
  const CorrelationModel m(5, 0.5, 1.0);
  EXPECT_THROW((void)m.system_entry_rate(0), ConfigError);
  EXPECT_THROW((void)m.system_entry_rate(6), ConfigError);
  EXPECT_THROW((void)m.per_torrent_entry_rate(0), ConfigError);
}

TEST(CorrelationTest, VectorsMatchScalars) {
  const CorrelationModel m(8, 0.33, 1.7);
  const auto sys = m.system_entry_rates();
  const auto per = m.per_torrent_entry_rates();
  ASSERT_EQ(sys.size(), 8u);
  ASSERT_EQ(per.size(), 8u);
  for (unsigned i = 1; i <= 8; ++i) {
    EXPECT_DOUBLE_EQ(sys[i - 1], m.system_entry_rate(i));
    EXPECT_DOUBLE_EQ(per[i - 1], m.per_torrent_entry_rate(i));
  }
}

}  // namespace
}  // namespace btmf::fluid
