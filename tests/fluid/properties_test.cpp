// Parameterised property sweeps over the fluid models: the paper's
// qualitative claims must hold across the whole (K, p, eta, gamma)
// region, not just at the evaluation constants.
#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/mfcd.h"
#include "btmf/fluid/mtcd.h"
#include "btmf/fluid/mtsd.h"
#include "btmf/fluid/single_torrent.h"

namespace btmf::fluid {
namespace {

struct SweepPoint {
  unsigned num_files;
  double p;
  double eta;
  double gamma;  // mu fixed at the paper's 0.02
};

std::ostream& operator<<(std::ostream& os, const SweepPoint& s) {
  return os << "K=" << s.num_files << " p=" << s.p << " eta=" << s.eta
            << " gamma=" << s.gamma;
}

class FluidPropertyTest : public ::testing::TestWithParam<SweepPoint> {
 protected:
  [[nodiscard]] FluidParams params() const {
    FluidParams fp;
    fp.mu = 0.02;
    fp.eta = GetParam().eta;
    fp.gamma = GetParam().gamma;
    return fp;
  }
  [[nodiscard]] CorrelationModel correlation() const {
    return {GetParam().num_files, GetParam().p, 1.0};
  }
};

TEST_P(FluidPropertyTest, MtcdNeverBeatsMtsdOnAveragePerFile) {
  // Fig. 2's claim: MTCD is at best equal (p -> 0) and worse otherwise.
  const CorrelationModel corr = correlation();
  const MtcdEquilibrium mtcd =
      mtcd_equilibrium(params(), corr.per_torrent_entry_rates());
  const MtsdResult mtsd = mtsd_metrics(params(), GetParam().num_files);
  const auto rates = corr.system_entry_rates();
  const double t_mtcd = average_online_time_per_file(mtcd.metrics, rates);
  const double t_mtsd = average_online_time_per_file(mtsd.metrics, rates);
  EXPECT_GE(t_mtcd, t_mtsd - 1e-9);
}

TEST_P(FluidPropertyTest, MtcdPopulationsNonNegative) {
  const CorrelationModel corr = correlation();
  const MtcdEquilibrium eq =
      mtcd_equilibrium(params(), corr.per_torrent_entry_rates());
  for (const double x : eq.downloaders) EXPECT_GE(x, 0.0);
  for (const double y : eq.seeds) EXPECT_GE(y, 0.0);
}

TEST_P(FluidPropertyTest, MtcdLittleLawConsistency) {
  // x_i = lambda_i * D_i must hold exactly in the closed form.
  const CorrelationModel corr = correlation();
  const auto rates = corr.per_torrent_entry_rates();
  const MtcdEquilibrium eq = mtcd_equilibrium(params(), rates);
  for (unsigned i = 0; i < GetParam().num_files; ++i) {
    if (rates[i] <= 0.0) continue;
    EXPECT_NEAR(eq.downloaders[i], rates[i] * eq.metrics.download_time[i],
                1e-9 * (1.0 + eq.downloaders[i]));
  }
}

TEST_P(FluidPropertyTest, MtcdFirstClassPerFileWorstAmongClasses) {
  // Per-file online time A + 1/(i gamma) strictly decreases in i, so the
  // single-file majority always pays the most under MTCD (Fig. 3).
  const CorrelationModel corr = correlation();
  if (corr.correlation() >= 1.0) return;  // only class K populated
  const MtcdEquilibrium eq =
      mtcd_equilibrium(params(), corr.per_torrent_entry_rates());
  for (unsigned i = 1; i < GetParam().num_files; ++i) {
    EXPECT_GT(eq.metrics.online_per_file[0],
              eq.metrics.online_per_file[i] - 1e-12);
  }
}

TEST_P(FluidPropertyTest, CmfsdRhoZeroNeverWorseThanRhoOne) {
  const CorrelationModel corr = correlation();
  const auto rates = corr.system_entry_rates();
  const CmfsdEquilibrium eq0 = CmfsdModel(params(), rates, 0.0).solve();
  const CmfsdEquilibrium eq1 = CmfsdModel(params(), rates, 1.0).solve();
  const double t0 = average_online_time_per_file(eq0.metrics, rates);
  const double t1 = average_online_time_per_file(eq1.metrics, rates);
  EXPECT_LE(t0, t1 + 1e-6);
}

TEST_P(FluidPropertyTest, CmfsdAverageMonotoneInRho) {
  // Fig. 4(a): the average online time per file increases with rho.
  const CorrelationModel corr = correlation();
  const auto rates = corr.system_entry_rates();
  double previous = -1.0;
  for (const double rho : {0.0, 0.5, 1.0}) {
    const CmfsdEquilibrium eq = CmfsdModel(params(), rates, rho).solve();
    const double t = average_online_time_per_file(eq.metrics, rates);
    EXPECT_GE(t, previous - 1e-6) << "rho=" << rho;
    previous = t;
  }
}

TEST_P(FluidPropertyTest, CmfsdRhoOneMatchesMfcdIdentity) {
  const CorrelationModel corr = correlation();
  const auto rates = corr.system_entry_rates();
  const CmfsdEquilibrium eq = CmfsdModel(params(), rates, 1.0).solve();
  const double mfcd_a = mfcd_download_time_per_file(params(), corr);
  const double avg = average_download_time_per_file(eq.metrics, rates);
  EXPECT_NEAR(avg, mfcd_a, 1e-4 * mfcd_a);
}

TEST_P(FluidPropertyTest, CmfsdPopulationsNonNegativeAndFlowConserving) {
  const CorrelationModel corr = correlation();
  const auto rates = corr.system_entry_rates();
  const CmfsdModel model(params(), rates, 0.25);
  const CmfsdEquilibrium eq = model.solve();
  for (const double v : eq.state) EXPECT_GE(v, -1e-9);
  for (unsigned i = 1; i <= GetParam().num_files; ++i) {
    EXPECT_NEAR(params().gamma * eq.state[model.y_index(i)], rates[i - 1],
                1e-6 * (1.0 + rates[i - 1]))
        << "class " << i;
  }
}

TEST_P(FluidPropertyTest, CmfsdClassOneImmuneToRho) {
  // Class-1 peers never virtual-seed; their download time still improves
  // as rho falls because others donate bandwidth — it must never worsen.
  const CorrelationModel corr = correlation();
  if (corr.correlation() >= 1.0) return;  // class 1 unpopulated
  const auto rates = corr.system_entry_rates();
  const CmfsdEquilibrium eq0 = CmfsdModel(params(), rates, 0.0).solve();
  const CmfsdEquilibrium eq1 = CmfsdModel(params(), rates, 1.0).solve();
  EXPECT_LE(eq0.metrics.download_time[0],
            eq1.metrics.download_time[0] + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FluidPropertyTest,
    ::testing::Values(
        SweepPoint{2, 0.2, 0.5, 0.05}, SweepPoint{2, 0.9, 0.5, 0.05},
        SweepPoint{5, 0.1, 0.5, 0.05}, SweepPoint{5, 0.6, 0.5, 0.05},
        SweepPoint{5, 1.0, 0.5, 0.05}, SweepPoint{10, 0.1, 0.5, 0.05},
        SweepPoint{10, 0.5, 0.5, 0.05}, SweepPoint{10, 1.0, 0.5, 0.05},
        SweepPoint{10, 0.5, 0.3, 0.05}, SweepPoint{10, 0.5, 1.0, 0.05},
        SweepPoint{10, 0.5, 0.5, 0.03}, SweepPoint{10, 0.5, 0.5, 0.10},
        SweepPoint{3, 0.7, 0.8, 0.08}),
    [](const ::testing::TestParamInfo<SweepPoint>& param_info) {
      const SweepPoint& s = param_info.param;
      // Incremental appends sidestep a GCC 12 -Wrestrict false positive
      // on chained operator+ over temporaries.
      std::string name = "K";
      name += std::to_string(s.num_files);
      name += "_p";
      name += std::to_string(static_cast<int>(s.p * 100));
      name += "_eta";
      name += std::to_string(static_cast<int>(s.eta * 100));
      name += "_gamma";
      name += std::to_string(static_cast<int>(s.gamma * 1000));
      return name;
    });

}  // namespace
}  // namespace btmf::fluid
