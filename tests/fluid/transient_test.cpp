#include "btmf/fluid/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/single_torrent.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(TransientTest, SamplesUniformGridIncludingEndpoints) {
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, 1.0);
  TransientOptions options;
  options.t_end = 100.0;
  options.samples = 5;
  const TransientSeries series = sample_trajectory(rhs, {0.0, 0.0}, options);
  ASSERT_EQ(series.times.size(), 5u);
  EXPECT_DOUBLE_EQ(series.times.front(), 0.0);
  EXPECT_DOUBLE_EQ(series.times.back(), 100.0);
  EXPECT_NEAR(series.times[1], 25.0, 1e-12);
  ASSERT_EQ(series.states.size(), 5u);
  EXPECT_DOUBLE_EQ(series.states[0][0], 0.0);
}

TEST(TransientTest, SingleTorrentConvergesToClosedForm) {
  const double lambda = 2.0;
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, lambda);
  TransientOptions options;
  options.t_end = 3000.0;
  options.samples = 60;
  const TransientSeries series = sample_trajectory(rhs, {0.0, 0.0}, options);
  const SingleTorrentEquilibrium eq =
      single_torrent_equilibrium(kPaperParams, lambda);
  EXPECT_NEAR(series.states.back()[0], eq.downloaders, 0.01 * eq.downloaders);
  EXPECT_NEAR(series.states.back()[1], eq.seeds, 0.01 * eq.seeds);
}

TEST(TransientTest, SettlingTimeFindsFirstEntry) {
  const double lambda = 1.0;
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, lambda);
  TransientOptions options;
  options.t_end = 4000.0;
  options.samples = 400;
  const TransientSeries series = sample_trajectory(rhs, {0.0, 0.0}, options);
  const SingleTorrentEquilibrium eq =
      single_torrent_equilibrium(kPaperParams, lambda);
  const std::vector<double> target{eq.downloaders, eq.seeds};
  const double settle = settling_time(series, target, 0.02);
  EXPECT_TRUE(std::isfinite(settle));
  EXPECT_GT(settle, 0.0);
  EXPECT_LT(settle, 4000.0);
  // A tighter tolerance cannot settle earlier.
  EXPECT_GE(settling_time(series, target, 0.005), settle);
}

TEST(TransientTest, SettlingTimeInfiniteWhenNeverReached) {
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, 1.0);
  TransientOptions options;
  options.t_end = 10.0;  // far too short
  options.samples = 10;
  const TransientSeries series = sample_trajectory(rhs, {0.0, 0.0}, options);
  const std::vector<double> target{60.0, 20.0};
  EXPECT_TRUE(std::isinf(settling_time(series, target, 0.001)));
}

TEST(TransientTest, FlashCrowdPeakExceedsSteadyState) {
  // Drop a crowd of 500 class-1 peers into an empty CMFSD torrent with a
  // small trickle arrival: the downloader population peaks at the crowd
  // size and then drains well below it.
  const CorrelationModel corr(3, 0.5, 0.1);
  const CmfsdModel model(kPaperParams, corr.system_entry_rates(), 0.0);
  std::vector<double> y0(model.state_size(), 0.0);
  y0[model.x_index(1, 1)] = 500.0;

  TransientOptions options;
  options.t_end = 3000.0;
  options.samples = 120;
  const TransientSeries series =
      sample_trajectory(model.rhs(), y0, options);

  const auto total_downloaders = [&](std::span<const double> state) {
    double total = 0.0;
    for (unsigned i = 1; i <= 3; ++i)
      for (unsigned j = 1; j <= i; ++j) total += state[model.x_index(i, j)];
    return total;
  };
  const double peak = peak_value(series, total_downloaders);
  EXPECT_NEAR(peak, 500.0, 1.0);  // the crowd itself is the peak
  EXPECT_LT(total_downloaders(series.states.back()), 50.0);
}

TEST(TransientTest, MapReducesEverySample) {
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, 1.0);
  TransientOptions options;
  options.t_end = 50.0;
  options.samples = 6;
  const TransientSeries series = sample_trajectory(rhs, {1.0, 2.0}, options);
  const std::vector<double> sums = series.map(
      [](std::span<const double> s) { return s[0] + s[1]; });
  ASSERT_EQ(sums.size(), 6u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
}

TEST(TransientTest, InvalidOptionsThrow) {
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, 1.0);
  TransientOptions options;
  options.samples = 1;
  EXPECT_THROW((void)sample_trajectory(rhs, {0.0, 0.0}, options), ConfigError);
  options.samples = 10;
  options.t_end = 0.0;
  EXPECT_THROW((void)sample_trajectory(rhs, {0.0, 0.0}, options), ConfigError);
}

}  // namespace
}  // namespace btmf::fluid
