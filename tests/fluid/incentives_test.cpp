#include "btmf/fluid/incentives.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/correlation.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

std::vector<double> paper_rates(double p, unsigned k = 5) {
  return CorrelationModel(k, p, 1.0).system_entry_rates();
}

TEST(IncentivesTest, ConformingTimeMatchesEquilibriumMetrics) {
  // The tagged-peer stage-sum with own_rho = rho_bar must reproduce the
  // population equilibrium's per-class download time exactly (both are
  // sum_j 1/(mu eta P(i,j) + PR)).
  const auto rates = paper_rates(0.9);
  const double rho_bar = 0.3;
  const CmfsdModel model(kPaperParams, rates, rho_bar);
  const CmfsdEquilibrium eq = model.solve();
  const IncentiveReport report =
      cmfsd_incentives(kPaperParams, rates, rho_bar);
  for (unsigned i = 1; i <= 5; ++i) {
    if (std::isnan(eq.metrics.download_time[i - 1])) continue;
    EXPECT_NEAR(report.conforming_download[i - 1],
                eq.metrics.download_time[i - 1],
                1e-4 * eq.metrics.download_time[i - 1])
        << "class " << i;
  }
}

TEST(IncentivesTest, DefectionIsDominantForMultiFileClasses) {
  // dD/d own_rho < 0: playing rho_d = 1 always (weakly) shortens the
  // deviator's download, whatever the population plays.
  for (const double rho_bar : {0.0, 0.3, 0.7, 1.0}) {
    const IncentiveReport report =
        cmfsd_incentives(kPaperParams, paper_rates(0.9), rho_bar);
    for (unsigned i = 2; i <= 5; ++i) {
      EXPECT_LE(report.defecting_download[i - 1],
                report.conforming_download[i - 1] + 1e-9)
          << "rho_bar=" << rho_bar << " class " << i;
      EXPECT_GE(report.temptation[i - 1], -1e-12);
    }
    // Class 1 has nothing to defect with.
    EXPECT_NEAR(report.temptation[0], 0.0, 1e-12);
  }
}

TEST(IncentivesTest, TemptationVanishesAtRhoBarOne) {
  // If everyone already defects, there is nothing left to gain.
  const IncentiveReport report =
      cmfsd_incentives(kPaperParams, paper_rates(0.9), 1.0);
  for (unsigned i = 1; i <= 5; ++i) {
    EXPECT_NEAR(report.temptation[i - 1], 0.0, 1e-12) << "class " << i;
  }
}

TEST(IncentivesTest, TemptationLargestAtGenerousPopulations) {
  // The social dilemma is sharpest when everyone else donates fully.
  const IncentiveReport generous =
      cmfsd_incentives(kPaperParams, paper_rates(0.9), 0.0);
  const IncentiveReport moderate =
      cmfsd_incentives(kPaperParams, paper_rates(0.9), 0.5);
  EXPECT_GT(generous.temptation[4], moderate.temptation[4]);
  EXPECT_GT(generous.temptation[4], 0.01);  // a real, material gain
}

TEST(IncentivesTest, SocialOptimumStillBeatsUniversalDefection) {
  // Even the *defector* in a generous population finishes sooner than a
  // conformer in an all-defecting one: cooperation enlarges the pie.
  const IncentiveReport generous =
      cmfsd_incentives(kPaperParams, paper_rates(0.9), 0.0);
  const IncentiveReport all_defect =
      cmfsd_incentives(kPaperParams, paper_rates(0.9), 1.0);
  EXPECT_LT(generous.defecting_download[4],
            all_defect.conforming_download[4]);
}

TEST(IncentivesTest, TaggedPeerValidatesInputs) {
  const auto rates = paper_rates(0.9);
  const CmfsdModel model(kPaperParams, rates, 0.5);
  const CmfsdEquilibrium eq = model.solve();
  EXPECT_THROW((void)tagged_peer_download_time(model, eq, 0, 0.5), ConfigError);
  EXPECT_THROW((void)tagged_peer_download_time(model, eq, 6, 0.5), ConfigError);
  EXPECT_THROW((void)tagged_peer_download_time(model, eq, 2, 1.5), ConfigError);
}

TEST(IncentivesTest, InvalidPopulationRhoThrows) {
  EXPECT_THROW((void)cmfsd_incentives(kPaperParams, paper_rates(0.9), -0.1),
               ConfigError);
  EXPECT_THROW((void)cmfsd_incentives(kPaperParams, paper_rates(0.9), 1.1),
               ConfigError);
}

}  // namespace
}  // namespace btmf::fluid
