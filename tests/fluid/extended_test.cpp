#include "btmf/fluid/extended.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/single_torrent.h"
#include "btmf/math/equilibrium.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(ExtendedTest, InfiniteBandwidthNoAbortMatchesBaseModel) {
  ExtendedParams params;  // defaults: c = inf, theta = 0, paper fluid
  const ExtendedEquilibrium eq =
      extended_single_torrent_equilibrium(params, 1.5);
  const SingleTorrentEquilibrium base =
      single_torrent_equilibrium(kPaperParams, 1.5);
  EXPECT_NEAR(eq.download_time, base.download_time, 1e-12);
  EXPECT_NEAR(eq.downloaders, base.downloaders, 1e-9);
  EXPECT_NEAR(eq.seeds, base.seeds, 1e-9);
  EXPECT_FALSE(eq.download_constrained);
  EXPECT_DOUBLE_EQ(eq.completion_fraction, 1.0);
}

TEST(ExtendedTest, CriticalBandwidthAtPaperConstants) {
  // c* = gamma mu eta / (gamma - mu) = 0.0005/0.03 = 1/60 ~ 0.0167:
  // only 0.83 x the upload bandwidth — the paper's "download much larger
  // than upload" assumption is very mild.
  const double c_star = critical_download_bandwidth(kPaperParams);
  EXPECT_NEAR(c_star, 1.0 / 60.0, 1e-12);
  EXPECT_LT(c_star, kPaperParams.mu);
}

TEST(ExtendedTest, DownloadConstrainedRegimeBelowCStar) {
  ExtendedParams params;
  params.download_bw = 0.01;  // < c* = 0.0167
  const ExtendedEquilibrium eq =
      extended_single_torrent_equilibrium(params, 1.0);
  EXPECT_TRUE(eq.download_constrained);
  EXPECT_NEAR(eq.download_time, 100.0, 1e-9);  // 1/c
  EXPECT_NEAR(eq.downloaders, 1.0 / 0.01, 1e-9);
  EXPECT_NEAR(eq.seeds, 0.01 * eq.downloaders / kPaperParams.gamma, 1e-9);
}

TEST(ExtendedTest, RegimesAgreeAtTheBoundary) {
  // Just above and below c* the two closed forms must (nearly) coincide.
  const double c_star = critical_download_bandwidth(kPaperParams);
  ExtendedParams below;
  below.download_bw = c_star * 0.999;
  ExtendedParams above;
  above.download_bw = c_star * 1.001;
  const ExtendedEquilibrium lo =
      extended_single_torrent_equilibrium(below, 1.0);
  const ExtendedEquilibrium hi =
      extended_single_torrent_equilibrium(above, 1.0);
  EXPECT_NE(lo.download_constrained, hi.download_constrained);
  EXPECT_NEAR(lo.download_time, hi.download_time, 0.01 * hi.download_time);
  EXPECT_NEAR(lo.downloaders, hi.downloaders, 0.01 * hi.downloaders);
}

TEST(ExtendedTest, AbortReducesPopulationAndCompletionFraction) {
  ExtendedParams with_abort;
  with_abort.abort_rate = 1.0 / 120.0;  // half the completion rate 1/60
  const ExtendedEquilibrium eq =
      extended_single_torrent_equilibrium(with_abort, 1.0);
  EXPECT_FALSE(eq.download_constrained);
  // x = lambda / (theta + 1/T) with T = 60: 1 / (1/120 + 1/60) = 40.
  EXPECT_NEAR(eq.downloaders, 40.0, 1e-9);
  // Completing fraction = (1/60) / (1/60 + 1/120) = 2/3.
  EXPECT_NEAR(eq.completion_fraction, 2.0 / 3.0, 1e-9);
  // The per-completer download time is unchanged (rates are per peer).
  EXPECT_NEAR(eq.download_time, 60.0, 1e-12);
}

TEST(ExtendedTest, GammaBelowMuWithFiniteBandwidthIsDownloadConstrained) {
  ExtendedParams params;
  params.base.gamma = 0.01;  // < mu: seeds linger, capacity abundant
  params.download_bw = 0.05;
  const ExtendedEquilibrium eq =
      extended_single_torrent_equilibrium(params, 1.0);
  EXPECT_TRUE(eq.download_constrained);
  EXPECT_NEAR(eq.download_time, 20.0, 1e-9);
}

TEST(ExtendedTest, GammaBelowMuWithInfiniteBandwidthThrows) {
  ExtendedParams params;
  params.base.gamma = 0.01;
  EXPECT_THROW((void)extended_single_torrent_equilibrium(params, 1.0),
               ConfigError);
  EXPECT_THROW((void)critical_download_bandwidth(params.base), ConfigError);
}

TEST(ExtendedTest, InvalidParamsThrow) {
  ExtendedParams params;
  params.download_bw = 0.0;
  EXPECT_THROW((void)extended_single_torrent_equilibrium(params, 1.0),
               ConfigError);
  params = ExtendedParams{};
  params.abort_rate = -1.0;
  EXPECT_THROW((void)extended_single_torrent_equilibrium(params, 1.0),
               ConfigError);
  params = ExtendedParams{};
  EXPECT_THROW((void)extended_single_torrent_equilibrium(params, 0.0),
               ConfigError);
}

TEST(ExtendedTest, OdeConvergesToClosedFormUploadRegime) {
  ExtendedParams params;
  params.abort_rate = 0.004;
  const math::OdeRhs rhs = extended_single_torrent_rhs(params, 1.0);
  const math::EquilibriumResult eq = math::find_equilibrium(rhs, {0.0, 0.0});
  const ExtendedEquilibrium expected =
      extended_single_torrent_equilibrium(params, 1.0);
  EXPECT_NEAR(eq.y[0], expected.downloaders, 1e-4 * expected.downloaders);
  EXPECT_NEAR(eq.y[1], expected.seeds, 1e-4 * expected.seeds);
}

TEST(ExtendedTest, OdeConvergesToClosedFormDownloadRegime) {
  ExtendedParams params;
  params.download_bw = 0.012;
  params.abort_rate = 0.002;
  const math::OdeRhs rhs = extended_single_torrent_rhs(params, 2.0);
  // The min() kink makes Newton's FD Jacobian unreliable; integrate only.
  math::EquilibriumOptions options;
  options.polish_with_newton = false;
  options.residual_tol = 1e-7;
  const math::EquilibriumResult eq =
      math::find_equilibrium(rhs, {0.0, 0.0}, options);
  const ExtendedEquilibrium expected =
      extended_single_torrent_equilibrium(params, 2.0);
  EXPECT_NEAR(eq.y[0], expected.downloaders, 1e-3 * expected.downloaders);
  EXPECT_NEAR(eq.y[1], expected.seeds, 1e-3 * expected.seeds);
}

}  // namespace
}  // namespace btmf::fluid
