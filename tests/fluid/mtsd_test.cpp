#include "btmf/fluid/mtsd.h"

#include <gtest/gtest.h>

#include "btmf/fluid/single_torrent.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(MtsdTest, PaperConstantsGive80PerFile) {
  const MtsdResult r = mtsd_metrics(kPaperParams, 10);
  EXPECT_NEAR(r.download_time_per_file, 60.0, 1e-12);
  EXPECT_NEAR(r.online_time_per_file, 80.0, 1e-12);
}

TEST(MtsdTest, OnlineTimeIsLinearInClass) {
  // Eq. (4): T_i = i (T + 1/gamma).
  const MtsdResult r = mtsd_metrics(kPaperParams, 10);
  for (unsigned i = 1; i <= 10; ++i) {
    EXPECT_NEAR(r.metrics.online_time[i - 1], i * 80.0, 1e-9);
    EXPECT_NEAR(r.metrics.download_time[i - 1], i * 60.0, 1e-9);
  }
}

TEST(MtsdTest, PerFileMetricsConstantAcrossClasses) {
  // MTSD is perfectly fair: every class pays the same per-file cost.
  const MtsdResult r = mtsd_metrics(kPaperParams, 10);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_NEAR(r.metrics.online_per_file[i], 80.0, 1e-9);
    EXPECT_NEAR(r.metrics.download_per_file[i], 60.0, 1e-9);
  }
}

TEST(MtsdTest, SingleClassDegenerate) {
  const MtsdResult r = mtsd_metrics(kPaperParams, 1);
  ASSERT_EQ(r.metrics.num_classes(), 1u);
  EXPECT_NEAR(r.metrics.online_time[0],
              single_torrent_download_time(kPaperParams) +
                  1.0 / kPaperParams.gamma,
              1e-12);
}

TEST(MtsdTest, ZeroClassesThrow) {
  EXPECT_THROW((void)mtsd_metrics(kPaperParams, 0), ConfigError);
}

TEST(MtsdTest, UnstableParametersThrow) {
  FluidParams params = kPaperParams;
  params.gamma = params.mu;  // boundary: T would be 0, model invalid
  EXPECT_THROW((void)mtsd_metrics(params, 5), ConfigError);
}

}  // namespace
}  // namespace btmf::fluid
