#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/extended.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(AbortAwareTest, ZeroThetaCoincidesWithTransferableModel) {
  ExtendedParams params;
  const ExtendedEquilibrium a =
      abort_aware_single_torrent_equilibrium(params, 1.0);
  const ExtendedEquilibrium b =
      extended_single_torrent_equilibrium(params, 1.0);
  EXPECT_DOUBLE_EQ(a.download_time, b.download_time);
  EXPECT_DOUBLE_EQ(a.downloaders, b.downloaders);
}

TEST(AbortAwareTest, SatisfiesItsFixedPointEquation) {
  ExtendedParams params;
  params.abort_rate = 1.0 / 120.0;
  const ExtendedEquilibrium eq =
      abort_aware_single_torrent_equilibrium(params, 1.0);
  const double r = 1.0 / eq.download_time;
  const double q = std::exp(-params.abort_rate * eq.download_time);
  const double rhs = params.base.mu * params.base.eta +
                     params.base.mu * params.abort_rate / params.base.gamma *
                         q / (1.0 - q);
  EXPECT_NEAR(r, rhs, 1e-10);
  EXPECT_NEAR(eq.completion_fraction, q, 1e-12);
}

TEST(AbortAwareTest, SlowerThanTransferableModel) {
  // Wasting the partial progress of aborting peers can only hurt.
  for (const double theta : {1e-4, 1.0 / 240.0, 1.0 / 120.0, 1.0 / 60.0}) {
    ExtendedParams params;
    params.abort_rate = theta;
    const ExtendedEquilibrium aware =
        abort_aware_single_torrent_equilibrium(params, 1.0);
    const ExtendedEquilibrium transferable =
        extended_single_torrent_equilibrium(params, 1.0);
    EXPECT_GE(aware.download_time, transferable.download_time - 1e-9)
        << "theta=" << theta;
    EXPECT_LE(aware.completion_fraction,
              transferable.completion_fraction + 1e-9)
        << "theta=" << theta;
  }
}

TEST(AbortAwareTest, ContinuousAsThetaVanishes) {
  ExtendedParams params;
  params.abort_rate = 1e-7;
  const ExtendedEquilibrium tiny =
      abort_aware_single_torrent_equilibrium(params, 1.0);
  EXPECT_NEAR(tiny.download_time, 60.0, 0.01);
  EXPECT_NEAR(tiny.completion_fraction, 1.0, 1e-4);
}

TEST(AbortAwareTest, PaperConstantsKnownValue) {
  // theta = 1/120: r solves r = 0.01 + (0.02/120/0.05) q/(1-q). The
  // discrete-event simulator measures dl time ~ 71.6, q ~ 0.55.
  ExtendedParams params;
  params.abort_rate = 1.0 / 120.0;
  const ExtendedEquilibrium eq =
      abort_aware_single_torrent_equilibrium(params, 1.0);
  EXPECT_NEAR(eq.download_time, 71.6, 1.5);
  EXPECT_NEAR(eq.completion_fraction, 0.55, 0.02);
}

TEST(AbortAwareTest, BandwidthCapOverridesRate) {
  ExtendedParams params;
  params.abort_rate = 1.0 / 120.0;
  params.download_bw = 0.005;  // way below the solved rate
  const ExtendedEquilibrium eq =
      abort_aware_single_torrent_equilibrium(params, 1.0);
  EXPECT_TRUE(eq.download_constrained);
  EXPECT_NEAR(eq.download_time, 200.0, 1e-9);
}

TEST(AbortAwareTest, GammaBelowMuRequiresFiniteBandwidth) {
  ExtendedParams params;
  params.base.gamma = 0.01;
  params.abort_rate = 0.01;
  EXPECT_THROW((void)abort_aware_single_torrent_equilibrium(params, 1.0),
               ConfigError);
  params.download_bw = 0.03;
  const ExtendedEquilibrium eq =
      abort_aware_single_torrent_equilibrium(params, 1.0);
  EXPECT_TRUE(eq.download_constrained);
}

}  // namespace
}  // namespace btmf::fluid
