#include "btmf/fluid/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(MetricsTest, PerFileColumnsDivideByClassSize) {
  const PerClassMetrics m =
      make_per_class_metrics({80.0, 160.0, 240.0}, {60.0, 120.0, 180.0});
  EXPECT_DOUBLE_EQ(m.online_per_file[0], 80.0);
  EXPECT_DOUBLE_EQ(m.online_per_file[1], 80.0);
  EXPECT_DOUBLE_EQ(m.online_per_file[2], 80.0);
  EXPECT_DOUBLE_EQ(m.download_per_file[2], 60.0);
  EXPECT_EQ(m.num_classes(), 3u);
}

TEST(MetricsTest, SizeMismatchThrows) {
  EXPECT_THROW((void)make_per_class_metrics({1.0}, {1.0, 2.0}), ConfigError);
}

TEST(MetricsTest, AverageOnlinePerFileWeightsByRates) {
  // Classes 1 and 2 with T = {10, 40} and rates {3, 1}:
  // avg/file = (3*10 + 1*40) / (3*1 + 1*2) = 70/5 = 14.
  const PerClassMetrics m = make_per_class_metrics({10.0, 40.0}, {5.0, 20.0});
  const std::vector<double> rates{3.0, 1.0};
  EXPECT_DOUBLE_EQ(average_online_time_per_file(m, rates), 14.0);
  EXPECT_DOUBLE_EQ(average_download_time_per_file(m, rates), 7.0);
}

TEST(MetricsTest, AveragePerUserUsesUserDenominator) {
  const PerClassMetrics m = make_per_class_metrics({10.0, 40.0}, {5.0, 20.0});
  const std::vector<double> rates{3.0, 1.0};
  // (3*10 + 1*40) / (3 + 1) = 17.5
  EXPECT_DOUBLE_EQ(average_online_time_per_user(m, rates), 17.5);
}

TEST(MetricsTest, ZeroRateClassesAreSkipped) {
  const PerClassMetrics m =
      make_per_class_metrics({10.0, kNaN, 30.0}, {5.0, kNaN, 15.0});
  const std::vector<double> rates{1.0, 0.0, 1.0};
  // (1*10 + 1*30) / (1*1 + 1*3) = 10.
  EXPECT_DOUBLE_EQ(average_online_time_per_file(m, rates), 10.0);
}

TEST(MetricsTest, NaNMetricsWithPositiveRateAreSkipped) {
  const PerClassMetrics m = make_per_class_metrics({10.0, kNaN}, {5.0, kNaN});
  const std::vector<double> rates{1.0, 1.0};
  EXPECT_DOUBLE_EQ(average_online_time_per_file(m, rates), 10.0);
}

TEST(MetricsTest, AllZeroRatesYieldNaN) {
  const PerClassMetrics m = make_per_class_metrics({10.0}, {5.0});
  const std::vector<double> rates{0.0};
  EXPECT_TRUE(std::isnan(average_online_time_per_file(m, rates)));
}

TEST(MetricsTest, RateSizeMismatchThrows) {
  const PerClassMetrics m = make_per_class_metrics({10.0}, {5.0});
  const std::vector<double> rates{1.0, 2.0};
  EXPECT_THROW((void)average_online_time_per_file(m, rates), ConfigError);
}

}  // namespace
}  // namespace btmf::fluid
