#include "btmf/fluid/cmfsd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/correlation.h"
#include "btmf/fluid/mfcd.h"
#include "btmf/fluid/single_torrent.h"
#include "btmf/math/newton.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

std::vector<double> paper_rates(double p, double lambda0 = 1.0) {
  return CorrelationModel(10, p, lambda0).system_entry_rates();
}

TEST(CmfsdTest, StateLayoutIsPackedTriangle) {
  const CmfsdModel model(kPaperParams, paper_rates(0.5), 0.5);
  EXPECT_EQ(model.state_size(), 10u * 11u / 2u + 10u);  // 65
  EXPECT_EQ(model.x_index(1, 1), 0u);
  EXPECT_EQ(model.x_index(2, 1), 1u);
  EXPECT_EQ(model.x_index(2, 2), 2u);
  EXPECT_EQ(model.x_index(3, 1), 3u);
  EXPECT_EQ(model.x_index(10, 10), 54u);
  EXPECT_EQ(model.y_index(1), 55u);
  EXPECT_EQ(model.y_index(10), 64u);
}

TEST(CmfsdTest, BandwidthSplitImplementsP) {
  const CmfsdModel model(kPaperParams, paper_rates(0.5), 0.3);
  // P(i, j) = 1 when i == 1 or j == 1, rho otherwise.
  EXPECT_DOUBLE_EQ(model.bandwidth_split(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.bandwidth_split(5, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.bandwidth_split(5, 2), 0.3);
  EXPECT_DOUBLE_EQ(model.bandwidth_split(10, 10), 0.3);
  EXPECT_THROW((void)model.bandwidth_split(0, 1), ConfigError);
  EXPECT_THROW((void)model.bandwidth_split(3, 4), ConfigError);
}

TEST(CmfsdTest, InvalidConstructionThrows) {
  EXPECT_THROW((void)CmfsdModel(kPaperParams, {}, 0.5), ConfigError);
  EXPECT_THROW((void)CmfsdModel(kPaperParams, {0.0, 0.0}, 0.5), ConfigError);
  EXPECT_THROW((void)CmfsdModel(kPaperParams, {-1.0}, 0.5), ConfigError);
  EXPECT_THROW((void)CmfsdModel(kPaperParams, {1.0}, 1.5), ConfigError);
  EXPECT_THROW((void)CmfsdModel(kPaperParams, {1.0}, -0.1), ConfigError);
  EXPECT_THROW(
      CmfsdModel(kPaperParams, {1.0, 1.0}, std::vector<double>{0.5}),
      ConfigError);
}

TEST(CmfsdTest, EmptyTorrentRhsInjectsArrivalsOnly) {
  const CmfsdModel model(kPaperParams, {0.5, 0.25}, 0.0);
  std::vector<double> state(model.state_size(), 0.0);
  std::vector<double> dstate(model.state_size(), -1.0);
  model.rhs()(0.0, state, dstate);
  EXPECT_DOUBLE_EQ(dstate[model.x_index(1, 1)], 0.5);
  EXPECT_DOUBLE_EQ(dstate[model.x_index(2, 1)], 0.25);
  EXPECT_DOUBLE_EQ(dstate[model.x_index(2, 2)], 0.0);
  EXPECT_DOUBLE_EQ(dstate[model.y_index(1)], 0.0);
}

TEST(CmfsdTest, SingleClassDegeneratesToQiuSrikant) {
  // K = 1: every peer downloads one file at full bandwidth; the model is
  // exactly the single-torrent fluid model.
  const CmfsdModel model(kPaperParams, {2.0}, 0.5);
  const CmfsdEquilibrium eq = model.solve();
  EXPECT_NEAR(eq.metrics.download_time[0],
              single_torrent_download_time(kPaperParams), 1e-6);
  EXPECT_NEAR(eq.metrics.online_time[0], 80.0, 1e-6);
}

TEST(CmfsdTest, SeedsAreLambdaOverGammaAtSteadyState) {
  const auto rates = paper_rates(0.6);
  const CmfsdModel model(kPaperParams, rates, 0.2);
  const CmfsdEquilibrium eq = model.solve();
  for (unsigned i = 1; i <= 10; ++i) {
    EXPECT_NEAR(eq.state[model.y_index(i)],
                rates[i - 1] / kPaperParams.gamma,
                1e-6 * (1.0 + rates[i - 1] / kPaperParams.gamma))
        << "class " << i;
  }
}

TEST(CmfsdTest, StageThroughputEqualsArrivalRate) {
  // Flow conservation: out(i, j) = lambda_i for every stage j at the
  // steady state. out(i,j) is recovered from the rhs structure:
  // dx^{i,1} = lambda_i - out(i,1) = 0 etc.
  const auto rates = paper_rates(0.8);
  const CmfsdModel model(kPaperParams, rates, 0.4);
  const CmfsdEquilibrium eq = model.solve();
  std::vector<double> dstate(model.state_size());
  model.rhs()(0.0, eq.state, dstate);
  // All derivatives vanish at equilibrium, which together with the chain
  // structure implies equal throughput through every stage.
  for (const double d : dstate) EXPECT_NEAR(d, 0.0, 1e-7);
  // Seed balance: gamma y_i = lambda_i.
  for (unsigned i = 1; i <= 10; ++i) {
    EXPECT_NEAR(kPaperParams.gamma * eq.state[model.y_index(i)],
                rates[i - 1], 1e-7);
  }
}

TEST(CmfsdTest, RhoOneMatchesMfcdDownloadTimePerFile) {
  // The analytic identity documented in cmfsd.h, for several p.
  for (const double p : {0.1, 0.4, 0.9, 1.0}) {
    const CorrelationModel corr(10, p, 1.0);
    const CmfsdModel model(kPaperParams, corr.system_entry_rates(), 1.0);
    const CmfsdEquilibrium eq = model.solve();
    const double mfcd_a = mfcd_download_time_per_file(kPaperParams, corr);
    const double avg_download = average_download_time_per_file(
        eq.metrics, corr.system_entry_rates());
    EXPECT_NEAR(avg_download, mfcd_a, 1e-4 * mfcd_a) << "p=" << p;
  }
}

TEST(CmfsdTest, RhoZeroBeatsRhoOne) {
  // The paper's headline: donating all finished-file bandwidth minimises
  // the average online time, dramatically so at high correlation.
  const auto rates = paper_rates(0.9);
  const CmfsdEquilibrium eq0 =
      CmfsdModel(kPaperParams, rates, 0.0).solve();
  const CmfsdEquilibrium eq1 =
      CmfsdModel(kPaperParams, rates, 1.0).solve();
  const double t0 = average_online_time_per_file(eq0.metrics, rates);
  const double t1 = average_online_time_per_file(eq1.metrics, rates);
  EXPECT_LT(t0, 0.6 * t1);  // roughly 52 vs 98 at p = 0.9
}

TEST(CmfsdTest, VirtualSeedBandwidthPositiveOnlyWhenRhoBelowOne) {
  const auto rates = paper_rates(0.9);
  const CmfsdEquilibrium eq0 =
      CmfsdModel(kPaperParams, rates, 0.0).solve();
  const CmfsdEquilibrium eq1 =
      CmfsdModel(kPaperParams, rates, 1.0).solve();
  EXPECT_GT(eq0.virtual_seed_bandwidth, 0.0);
  EXPECT_NEAR(eq1.virtual_seed_bandwidth, 0.0, 1e-12);
}

TEST(CmfsdTest, NewtonFromScratchAgreesWithTransientIntegration) {
  // Two independent numerical routes to the same fixed point.
  const auto rates = paper_rates(0.7);
  const CmfsdModel model(kPaperParams, rates, 0.3);
  const CmfsdEquilibrium via_integration = model.solve();

  const math::OdeRhs rhs = model.rhs();
  const math::VectorField field = [&rhs](std::span<const double> x,
                                         std::span<double> out) {
    rhs(0.0, x, out);
  };
  // Start Newton from a deliberately different point: a uniform guess.
  std::vector<double> guess(model.state_size(), 30.0);
  math::NewtonOptions options;
  options.tol = 1e-12;
  options.max_iterations = 200;
  options.project = [](std::span<double> x) {
    for (double& v : x) v = std::max(v, 0.0);
  };
  const math::NewtonResult newton = math::newton_solve(field, guess, options);
  ASSERT_TRUE(newton.converged);
  for (std::size_t s = 0; s < model.state_size(); ++s) {
    EXPECT_NEAR(newton.x[s], via_integration.state[s],
                1e-5 * (1.0 + via_integration.state[s]))
        << "state " << s;
  }
}

TEST(CmfsdTest, PerClassRhoCheatersDegradeObedientPeers) {
  // Turn classes 6..10 into cheaters (rho = 1). Obedient multi-file peers
  // lose virtual-seed supply, so class-5 online time gets worse than in
  // the all-obedient system.
  const auto rates = paper_rates(0.9);
  std::vector<double> rho_obedient(10, 0.0);
  std::vector<double> rho_mixed(10, 0.0);
  for (unsigned i = 5; i < 10; ++i) rho_mixed[i] = 1.0;
  const CmfsdEquilibrium honest =
      CmfsdModel(kPaperParams, rates, rho_obedient).solve();
  const CmfsdEquilibrium mixed =
      CmfsdModel(kPaperParams, rates, rho_mixed).solve();
  EXPECT_GT(mixed.metrics.online_time[4], honest.metrics.online_time[4]);
  // ... but cheaters do better than they would obeying in that system:
  // their download time per file drops below the obedient equilibrium's.
  EXPECT_GT(mixed.metrics.download_per_file[9],
            honest.metrics.download_per_file[9]);
}

TEST(CmfsdTest, MetricsFromStateValidatesSize) {
  const CmfsdModel model(kPaperParams, paper_rates(0.5), 0.5);
  EXPECT_THROW((void)model.metrics_from_state(std::vector<double>(3, 0.0)),
               ConfigError);
}

TEST(CmfsdTest, ZeroRateClassHasNaNMetrics) {
  // p = 1 concentrates everything in class K.
  const auto rates = paper_rates(1.0);
  const CmfsdEquilibrium eq = CmfsdModel(kPaperParams, rates, 0.0).solve();
  for (unsigned i = 0; i < 9; ++i) {
    EXPECT_TRUE(std::isnan(eq.metrics.online_time[i])) << "class " << i + 1;
  }
  EXPECT_FALSE(std::isnan(eq.metrics.online_time[9]));
}

}  // namespace
}  // namespace btmf::fluid
