#include "btmf/fluid/adapt_fluid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

std::vector<double> paper_rates(unsigned k, double p) {
  return CorrelationModel(k, p, 1.0).system_entry_rates();
}

TEST(AdaptFluidTest, StateLayoutIsConsistent) {
  const AdaptFluidModel model(kPaperParams, paper_rates(4, 0.8), 0.3);
  // 2 cohorts x 10 stages + 2 x 4 seeds + 4 rho = 32.
  EXPECT_EQ(model.state_size(), 2u * 10u + 2u * 4u + 4u);
  EXPECT_EQ(model.x_index(false, 1, 1), 0u);
  EXPECT_EQ(model.x_index(true, 1, 1), 10u);
  EXPECT_EQ(model.y_index(false, 1), 20u);
  EXPECT_EQ(model.y_index(true, 4), 27u);
  EXPECT_EQ(model.rho_index(1), 28u);
  EXPECT_EQ(model.rho_index(4), 31u);
}

TEST(AdaptFluidTest, InvalidConstructionThrows) {
  EXPECT_THROW((void)AdaptFluidModel(kPaperParams, {}, 0.0), ConfigError);
  EXPECT_THROW((void)AdaptFluidModel(kPaperParams, {1.0}, 1.0), ConfigError);
  EXPECT_THROW((void)AdaptFluidModel(kPaperParams, {1.0}, -0.1), ConfigError);
  AdaptFluidParams bad;
  bad.phi_lo = 1.0;
  bad.phi_hi = -1.0;
  EXPECT_THROW((void)AdaptFluidModel(kPaperParams, {1.0}, 0.0, bad), ConfigError);
}

TEST(AdaptFluidTest, AllObedientHighCorrelationStaysGenerous) {
  // With no cheaters at high p, contributions and receipts balance near
  // the dead band: starting at rho = 0 the system stays generous and
  // reproduces the static CMFSD(rho ~ 0) performance.
  const auto rates = paper_rates(5, 0.9);
  const AdaptFluidModel model(kPaperParams, rates, 0.0);
  const AdaptFluidEquilibrium eq = model.solve();
  for (unsigned i = 2; i <= 5; ++i) {
    EXPECT_LT(eq.rho[i - 1], 0.35) << "class " << i;
  }
  const CmfsdEquilibrium generous =
      CmfsdModel(kPaperParams, rates, 0.0).solve();
  const double static_avg =
      average_online_time_per_file(generous.metrics, rates);
  EXPECT_NEAR(eq.avg_online_per_file, static_avg, 0.25 * static_avg);
}

TEST(AdaptFluidTest, CheaterMajorityDrivesRhoUp) {
  const auto rates = paper_rates(5, 0.9);
  const AdaptFluidEquilibrium honest =
      AdaptFluidModel(kPaperParams, rates, 0.0).solve();
  const AdaptFluidEquilibrium cheated =
      AdaptFluidModel(kPaperParams, rates, 0.8).solve();
  double honest_mean = 0.0;
  double cheated_mean = 0.0;
  for (unsigned i = 2; i <= 5; ++i) {
    honest_mean += honest.rho[i - 1];
    cheated_mean += cheated.rho[i - 1];
  }
  EXPECT_GT(cheated_mean, honest_mean + 0.4);
}

TEST(AdaptFluidTest, RhoStaysInUnitInterval) {
  for (const double f : {0.0, 0.5, 0.9}) {
    AdaptFluidParams half_start;
    half_start.initial_rho = 0.5;
    const AdaptFluidEquilibrium eq =
        AdaptFluidModel(kPaperParams, paper_rates(4, 0.8), f, half_start)
            .solve();
    for (const double rho : eq.rho) {
      EXPECT_GE(rho, 0.0);
      EXPECT_LE(rho, 1.0);
    }
  }
}

TEST(AdaptFluidTest, FlowConservationHoldsPerCohort) {
  const auto rates = paper_rates(4, 0.7);
  const double f = 0.4;
  const AdaptFluidModel model(kPaperParams, rates, f);
  const AdaptFluidEquilibrium eq = model.solve();
  for (unsigned i = 1; i <= 4; ++i) {
    const double obedient_rate = (i >= 2 ? 1.0 - f : 1.0) * rates[i - 1];
    const double cheater_rate = (i >= 2 ? f : 0.0) * rates[i - 1];
    EXPECT_NEAR(kPaperParams.gamma * eq.state[model.y_index(false, i)],
                obedient_rate, 2e-4 * (1.0 + obedient_rate))
        << "obedient class " << i;
    EXPECT_NEAR(kPaperParams.gamma * eq.state[model.y_index(true, i)],
                cheater_rate, 2e-4 * (1.0 + cheater_rate))
        << "cheater class " << i;
  }
}

TEST(AdaptFluidTest, CheatersOutperformObedientPeersOfSameClass) {
  // The incentive problem the paper worries about: at the Adapt fixed
  // point with a mixed population, a cheater of class i downloads no
  // slower than an obedient peer of the same class.
  const auto rates = paper_rates(5, 0.9);
  const AdaptFluidEquilibrium eq =
      AdaptFluidModel(kPaperParams, rates, 0.5).solve();
  for (unsigned i = 2; i <= 5; ++i) {
    if (std::isnan(eq.cheater.download_time[i - 1])) continue;
    EXPECT_LE(eq.cheater.download_time[i - 1],
              eq.obedient.download_time[i - 1] + 1e-6)
        << "class " << i;
  }
}

TEST(AdaptFluidTest, ZeroAdaptationRatesFreezeRho) {
  AdaptFluidParams frozen;
  frozen.rate_up = 0.0;
  frozen.rate_down = 0.0;
  frozen.initial_rho = 0.25;
  const auto rates = paper_rates(3, 0.8);
  const AdaptFluidEquilibrium eq =
      AdaptFluidModel(kPaperParams, rates, 0.5, frozen).solve();
  for (unsigned i = 2; i <= 3; ++i) {
    EXPECT_NEAR(eq.rho[i - 1], 0.25, 1e-9);
  }
}

}  // namespace
}  // namespace btmf::fluid
