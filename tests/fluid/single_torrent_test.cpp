#include "btmf/fluid/single_torrent.h"

#include <gtest/gtest.h>

#include "btmf/math/equilibrium.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(SingleTorrentTest, PaperConstantsGiveDownloadTime60) {
  // With mu = 0.02, eta = 0.5, gamma = 0.05:
  // T = (0.05 - 0.02) / (0.05 * 0.02 * 0.5) = 60, online = 80.
  const SingleTorrentEquilibrium eq =
      single_torrent_equilibrium(kPaperParams, 1.0);
  EXPECT_NEAR(eq.download_time, 60.0, 1e-12);
  EXPECT_NEAR(eq.online_time, 80.0, 1e-12);
  EXPECT_NEAR(eq.downloaders, 60.0, 1e-12);
  EXPECT_NEAR(eq.seeds, 20.0, 1e-12);
}

TEST(SingleTorrentTest, PopulationsScaleLinearlyInLambda) {
  const SingleTorrentEquilibrium a =
      single_torrent_equilibrium(kPaperParams, 1.0);
  const SingleTorrentEquilibrium b =
      single_torrent_equilibrium(kPaperParams, 3.0);
  EXPECT_NEAR(b.downloaders, 3.0 * a.downloaders, 1e-9);
  EXPECT_NEAR(b.seeds, 3.0 * a.seeds, 1e-9);
  // ... while times are rate-independent (BitTorrent scalability, [7]).
  EXPECT_NEAR(b.download_time, a.download_time, 1e-12);
}

TEST(SingleTorrentTest, GammaBelowMuThrows) {
  FluidParams params = kPaperParams;
  params.gamma = 0.01;  // < mu = 0.02
  EXPECT_THROW((void)single_torrent_download_time(params), ConfigError);
}

TEST(SingleTorrentTest, InvalidParamsThrow) {
  FluidParams params = kPaperParams;
  params.mu = 0.0;
  EXPECT_THROW((void)single_torrent_equilibrium(params, 1.0), ConfigError);
  params = kPaperParams;
  params.eta = 1.5;
  EXPECT_THROW((void)single_torrent_equilibrium(params, 1.0), ConfigError);
  EXPECT_THROW((void)single_torrent_equilibrium(kPaperParams, 0.0), ConfigError);
}

TEST(SingleTorrentTest, OdeTransientConvergesToClosedForm) {
  const double lambda = 2.0;
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, lambda);
  const math::EquilibriumResult eq =
      math::find_equilibrium(rhs, {0.0, 0.0});
  const SingleTorrentEquilibrium expected =
      single_torrent_equilibrium(kPaperParams, lambda);
  EXPECT_NEAR(eq.y[0], expected.downloaders, 1e-5);
  EXPECT_NEAR(eq.y[1], expected.seeds, 1e-5);
}

TEST(SingleTorrentTest, OdeConservesFlowAtEquilibrium) {
  // At steady state the seed outflow gamma*y equals the arrival rate.
  const double lambda = 1.5;
  const math::OdeRhs rhs = single_torrent_rhs(kPaperParams, lambda);
  const math::EquilibriumResult eq =
      math::find_equilibrium(rhs, {0.0, 0.0});
  EXPECT_NEAR(kPaperParams.gamma * eq.y[1], lambda, 1e-6);
}

TEST(SingleTorrentTest, FasterSeedsLeaveLongerDownloads) {
  // Larger gamma = seeds leave sooner = less capacity = longer T.
  FluidParams slow_leave = kPaperParams;  // gamma = 0.05
  FluidParams fast_leave = kPaperParams;
  fast_leave.gamma = 0.10;
  EXPECT_GT(single_torrent_download_time(fast_leave),
            single_torrent_download_time(slow_leave));
}

TEST(SingleTorrentTest, HigherEtaShortensDownloads) {
  FluidParams low = kPaperParams;
  low.eta = 0.25;
  FluidParams high = kPaperParams;
  high.eta = 1.0;
  EXPECT_GT(single_torrent_download_time(low),
            single_torrent_download_time(high));
}

}  // namespace
}  // namespace btmf::fluid
