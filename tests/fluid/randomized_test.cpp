// Randomised invariant checks: seeded random parameter draws across the
// whole feasible region, asserting structural properties that no amount
// of hand-picked cases can cover. Failures print the draw so they are
// reproducible.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/extended.h"
#include "btmf/fluid/mfcd.h"
#include "btmf/fluid/mtcd.h"
#include "btmf/fluid/mtsd.h"

namespace btmf::fluid {
namespace {

struct Draw {
  unsigned k;
  double p;
  double mu;
  double eta;
  double gamma;
  double rho;

  [[nodiscard]] FluidParams params() const { return {mu, eta, gamma}; }
  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "K=" << k << " p=" << p << " mu=" << mu << " eta=" << eta
       << " gamma=" << gamma << " rho=" << rho;
    return os.str();
  }
};

Draw random_draw(std::mt19937_64& rng) {
  std::uniform_int_distribution<unsigned> k_dist(1, 8);
  std::uniform_real_distribution<double> p_dist(0.05, 1.0);
  std::uniform_real_distribution<double> mu_dist(0.005, 0.05);
  std::uniform_real_distribution<double> eta_dist(0.2, 1.0);
  std::uniform_real_distribution<double> ratio_dist(1.2, 6.0);
  std::uniform_real_distribution<double> rho_dist(0.0, 1.0);
  Draw d;
  d.k = k_dist(rng);
  d.p = p_dist(rng);
  d.mu = mu_dist(rng);
  d.eta = eta_dist(rng);
  d.gamma = d.mu * ratio_dist(rng);  // keep gamma > mu (stable regime)
  d.rho = rho_dist(rng);
  return d;
}

TEST(RandomizedFluidTest, MtcdClosedFormIsAFixedPointOfItsOde) {
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const Draw d = random_draw(rng);
    const CorrelationModel corr(d.k, d.p, 1.0);
    const auto rates = corr.per_torrent_entry_rates();
    const MtcdEquilibrium eq = mtcd_equilibrium(d.params(), rates);

    std::vector<double> state(2 * d.k);
    for (unsigned i = 0; i < d.k; ++i) {
      state[i] = eq.downloaders[i];
      state[d.k + i] = eq.seeds[i];
    }
    std::vector<double> dstate(2 * d.k);
    mtcd_rhs(d.params(), rates)(0.0, state, dstate);
    for (const double v : dstate) {
      EXPECT_NEAR(v, 0.0, 1e-10) << d.describe();
    }
  }
}

TEST(RandomizedFluidTest, SchemeOrderingHolds) {
  // CMFSD(rho) <= MFCD = MTCD and MTSD <= MTCD on the average online
  // time per file, everywhere in the stable region.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const Draw d = random_draw(rng);
    const CorrelationModel corr(d.k, d.p, 1.0);
    const auto sys = corr.system_entry_rates();

    const MtcdEquilibrium mtcd =
        mtcd_equilibrium(d.params(), corr.per_torrent_entry_rates());
    const double mtcd_avg = average_online_time_per_file(mtcd.metrics, sys);
    const double mtsd_avg = average_online_time_per_file(
        mtsd_metrics(d.params(), d.k).metrics, sys);
    const CmfsdEquilibrium cmfsd =
        CmfsdModel(d.params(), sys, d.rho).solve();
    const double cmfsd_avg =
        average_online_time_per_file(cmfsd.metrics, sys);

    EXPECT_LE(mtsd_avg, mtcd_avg + 1e-9) << d.describe();
    EXPECT_LE(cmfsd_avg, mtcd_avg + 1e-4 * mtcd_avg) << d.describe();
  }
}

TEST(RandomizedFluidTest, CmfsdConservationAndPositivity) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    const Draw d = random_draw(rng);
    const CorrelationModel corr(d.k, d.p, 1.0);
    const auto sys = corr.system_entry_rates();
    const CmfsdModel model(d.params(), sys, d.rho);
    const CmfsdEquilibrium eq = model.solve();
    for (const double v : eq.state) {
      EXPECT_GE(v, -1e-8) << d.describe();
    }
    for (unsigned i = 1; i <= d.k; ++i) {
      EXPECT_NEAR(d.gamma * eq.state[model.y_index(i)], sys[i - 1],
                  1e-5 * (1.0 + sys[i - 1]))
          << d.describe() << " class " << i;
    }
  }
}

TEST(RandomizedFluidTest, ExtendedRegimesAlwaysConsistent) {
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> c_dist(0.001, 0.1);
  std::uniform_real_distribution<double> theta_dist(0.0, 0.02);
  for (int trial = 0; trial < 40; ++trial) {
    const Draw d = random_draw(rng);
    ExtendedParams params;
    params.base = d.params();
    params.download_bw = c_dist(rng);
    params.abort_rate = theta_dist(rng);
    const ExtendedEquilibrium eq =
        extended_single_torrent_equilibrium(params, 1.0);
    EXPECT_GT(eq.download_time, 0.0) << d.describe();
    EXPECT_GE(eq.completion_fraction, 0.0) << d.describe();
    EXPECT_LE(eq.completion_fraction, 1.0 + 1e-12) << d.describe();
    EXPECT_GE(eq.downloaders, 0.0) << d.describe();
    // If download-constrained, T = 1/c exactly.
    if (eq.download_constrained) {
      EXPECT_NEAR(eq.download_time, 1.0 / params.download_bw, 1e-9)
          << d.describe();
    }
    // The abort-aware equilibrium is never faster.
    const ExtendedEquilibrium aware =
        abort_aware_single_torrent_equilibrium(params, 1.0);
    EXPECT_GE(aware.download_time, eq.download_time - 1e-9) << d.describe();
  }
}

}  // namespace
}  // namespace btmf::fluid
