#include "btmf/fluid/hetero.h"

#include <gtest/gtest.h>

#include <numeric>

#include "btmf/fluid/correlation.h"
#include "btmf/fluid/mfcd.h"
#include "btmf/math/special.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(PoissonBinomialTest, UniformMatchesBinomial) {
  const std::vector<double> probs(10, 0.3);
  const auto pb = math::poisson_binomial_pmf_vector(probs);
  const auto bin = math::binomial_pmf_vector(10, 0.3);
  ASSERT_EQ(pb.size(), bin.size());
  for (std::size_t k = 0; k < pb.size(); ++k) {
    EXPECT_NEAR(pb[k], bin[k], 1e-14) << "k=" << k;
  }
}

TEST(PoissonBinomialTest, SumsToOneAndMeanIsSumP) {
  const std::vector<double> probs{0.9, 0.5, 0.2, 0.05, 1.0, 0.0};
  const auto pmf = math::poisson_binomial_pmf_vector(probs);
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-14);
  double mean = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    mean += static_cast<double>(k) * pmf[k];
  }
  EXPECT_NEAR(mean, 0.9 + 0.5 + 0.2 + 0.05 + 1.0, 1e-12);
}

TEST(PoissonBinomialTest, DegenerateEndpoints) {
  const auto pmf = math::poisson_binomial_pmf_vector(
      std::vector<double>{1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(pmf[2], 1.0);
  EXPECT_DOUBLE_EQ(pmf[0], 0.0);
  EXPECT_DOUBLE_EQ(pmf[3], 0.0);
}

TEST(PoissonBinomialTest, InvalidProbabilityThrows) {
  EXPECT_THROW(
      math::poisson_binomial_pmf_vector(std::vector<double>{0.5, 1.2}),
      ConfigError);
}

TEST(HeteroCatalogTest, UniformCatalogMatchesCorrelationModel) {
  const HeterogeneousCatalog catalog(std::vector<double>(10, 0.4), 2.0);
  const CorrelationModel uniform(10, 0.4, 2.0);
  const auto het_sys = catalog.system_class_rates();
  const auto uni_sys = uniform.system_entry_rates();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(het_sys[i], uni_sys[i], 1e-12) << "class " << i + 1;
  }
  const auto het_torrent = catalog.torrent_class_rates(3);
  const auto uni_torrent = uniform.per_torrent_entry_rates();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(het_torrent[i], uni_torrent[i], 1e-12) << "class " << i + 1;
  }
}

TEST(HeteroCatalogTest, TorrentRatesSumToLambdaPj) {
  const HeterogeneousCatalog catalog({0.9, 0.3, 0.1, 0.6}, 1.5);
  for (unsigned j = 0; j < 4; ++j) {
    const auto rates = catalog.torrent_class_rates(j);
    const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
    EXPECT_NEAR(total, 1.5 * catalog.request_probs()[j], 1e-12)
        << "torrent " << j;
  }
}

TEST(HeteroCatalogTest, InvalidConstructionThrows) {
  EXPECT_THROW((void)HeterogeneousCatalog({}, 1.0), ConfigError);
  EXPECT_THROW((void)HeterogeneousCatalog({0.5}, 0.0), ConfigError);
  EXPECT_THROW((void)HeterogeneousCatalog({1.5}, 1.0), ConfigError);
  EXPECT_THROW((void)HeterogeneousCatalog({0.0, 0.0}, 1.0), ConfigError);
}

TEST(ZipfProfileTest, SkewZeroIsUniformAtMeanP) {
  const auto probs = HeterogeneousCatalog::zipf_profile(8, 0.0, 0.4);
  for (const double p : probs) EXPECT_NEAR(p, 0.4, 1e-12);
}

TEST(ZipfProfileTest, PreservesMeanAndOrdering) {
  // mean 0.25 keeps the head below 1 (scale = 2.5/H_10 ~ 0.85), so no
  // clamping and the mean is exact.
  const auto probs = HeterogeneousCatalog::zipf_profile(10, 1.0, 0.25);
  double mean = std::accumulate(probs.begin(), probs.end(), 0.0) / 10.0;
  EXPECT_NEAR(mean, 0.25, 1e-12);
  for (std::size_t f = 1; f < probs.size(); ++f) {
    EXPECT_GE(probs[f - 1], probs[f]);
  }
  EXPECT_LE(probs.front(), 1.0);
}

TEST(ZipfProfileTest, ClampsAtOne) {
  // Extreme skew with a high mean: the head would exceed 1 unclamped.
  const auto probs = HeterogeneousCatalog::zipf_profile(10, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(probs.front(), 1.0);
  for (const double p : probs) EXPECT_LE(p, 1.0);
}

TEST(HeteroMtcdTest, UniformCatalogReducesToMfcdFactor) {
  const HeterogeneousCatalog catalog(std::vector<double>(10, 0.7), 1.0);
  const HeteroMtcdReport report =
      hetero_mtcd_report(kPaperParams, catalog);
  const CorrelationModel uniform(10, 0.7, 1.0);
  const double a = mfcd_download_time_per_file(kPaperParams, uniform);
  for (unsigned j = 0; j < 10; ++j) {
    EXPECT_NEAR(report.per_torrent_factor[j], a, 1e-10) << "torrent " << j;
  }
  EXPECT_NEAR(report.avg_download_per_file, a, 1e-10);
}

TEST(HeteroMtcdTest, ColdTorrentsAreSlowerUnderSkew) {
  // Users in a cold torrent almost surely also hold many hot files, so
  // their bandwidth is split more ways: cold torrents get the larger
  // per-file factor A_j.
  const auto probs = HeterogeneousCatalog::zipf_profile(10, 1.2, 0.3);
  const HeterogeneousCatalog catalog(probs, 1.0);
  const HeteroMtcdReport report =
      hetero_mtcd_report(kPaperParams, catalog);
  EXPECT_LT(report.per_torrent_factor.front(),
            report.per_torrent_factor.back());
}

TEST(HeteroMtcdTest, ZeroProbabilityFilesAreSkipped) {
  const HeterogeneousCatalog catalog({0.8, 0.0, 0.4}, 1.0);
  const HeteroMtcdReport report =
      hetero_mtcd_report(kPaperParams, catalog);
  EXPECT_DOUBLE_EQ(report.per_torrent_factor[1], 0.0);
  EXPECT_GT(report.per_torrent_factor[0], 0.0);
  EXPECT_GT(report.avg_online_per_file, report.avg_download_per_file);
}

}  // namespace
}  // namespace btmf::fluid
