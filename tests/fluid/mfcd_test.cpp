#include "btmf/fluid/mfcd.h"

#include <gtest/gtest.h>

#include "btmf/fluid/mtcd.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

TEST(MfcdTest, EquivalentToMtcdWithSubtorrentRates) {
  // Sec. 3.4: MFCD "could be viewed to be equivalent to the MTCD scheme".
  const CorrelationModel corr(10, 0.7, 2.0);
  const MtcdEquilibrium via_mfcd = mfcd_equilibrium(kPaperParams, corr);
  const MtcdEquilibrium via_mtcd =
      mtcd_equilibrium(kPaperParams, corr.per_torrent_entry_rates());
  EXPECT_NEAR(via_mfcd.per_file_factor, via_mtcd.per_file_factor, 1e-12);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_NEAR(via_mfcd.metrics.online_time[i],
                via_mtcd.metrics.online_time[i], 1e-12);
  }
}

TEST(MfcdTest, ClosedFormFactorMatchesEquilibrium) {
  for (const double p : {0.1, 0.5, 0.9, 1.0}) {
    const CorrelationModel corr(10, p, 1.0);
    EXPECT_NEAR(mfcd_download_time_per_file(kPaperParams, corr),
                mfcd_equilibrium(kPaperParams, corr).per_file_factor, 1e-10)
        << "p=" << p;
  }
}

TEST(MfcdTest, FactorAtFullCorrelationIs96) {
  const CorrelationModel corr(10, 1.0, 1.0);
  EXPECT_NEAR(mfcd_download_time_per_file(kPaperParams, corr), 96.0, 1e-9);
}

TEST(MfcdTest, FactorApproachesSingleTorrentLimitAsPVanishes) {
  // As p -> 0, (1 - (1-p)^K)/(Kp) -> 1 and A -> T = 60.
  const CorrelationModel corr(10, 1e-6, 1.0);
  EXPECT_NEAR(mfcd_download_time_per_file(kPaperParams, corr), 60.0, 1e-3);
}

TEST(MfcdTest, FactorIncreasesWithCorrelation) {
  // More correlation = more concurrent bandwidth splitting = slower.
  double previous = 0.0;
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const CorrelationModel corr(10, p, 1.0);
    const double a = mfcd_download_time_per_file(kPaperParams, corr);
    EXPECT_GT(a, previous) << "p=" << p;
    previous = a;
  }
}

TEST(MfcdTest, FactorIndependentOfVisitRate) {
  // BitTorrent scalability: lambda0 cancels out of A.
  const CorrelationModel small(10, 0.5, 0.1);
  const CorrelationModel large(10, 0.5, 100.0);
  EXPECT_NEAR(mfcd_download_time_per_file(kPaperParams, small),
              mfcd_download_time_per_file(kPaperParams, large), 1e-9);
}

TEST(MfcdTest, ZeroCorrelationThrows) {
  const CorrelationModel corr(10, 0.0, 1.0);
  EXPECT_THROW((void)mfcd_equilibrium(kPaperParams, corr), ConfigError);
  EXPECT_THROW((void)mfcd_download_time_per_file(kPaperParams, corr), ConfigError);
}

}  // namespace
}  // namespace btmf::fluid
