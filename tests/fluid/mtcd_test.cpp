#include "btmf/fluid/mtcd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "btmf/fluid/correlation.h"
#include "btmf/fluid/single_torrent.h"
#include "btmf/math/equilibrium.h"
#include "btmf/util/error.h"

namespace btmf::fluid {
namespace {

std::vector<double> paper_rates(double p) {
  return CorrelationModel(10, p, 1.0).per_torrent_entry_rates();
}

TEST(MtcdTest, DegeneratesToSingleTorrentWithOneClass) {
  // K = 1, i = 1: eq. (2) must reduce to the Qiu–Srikant T (Sec. 3.3).
  const std::vector<double> rates{1.0};
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, rates);
  EXPECT_NEAR(eq.per_file_factor,
              single_torrent_download_time(kPaperParams), 1e-12);
  EXPECT_NEAR(eq.metrics.online_time[0], 80.0, 1e-12);
}

TEST(MtcdTest, PaperValueAtFullCorrelation) {
  // p = 1: A = (gamma - mu/K) / (gamma mu eta) = 0.048/0.0005 = 96.
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, paper_rates(1.0));
  EXPECT_NEAR(eq.per_file_factor, 96.0, 1e-9);
  // T_10 = 10*96 + 20 = 980, per file 98.
  EXPECT_NEAR(eq.metrics.online_per_file[9], 98.0, 1e-9);
}

TEST(MtcdTest, SeedsAreLambdaOverGamma) {
  const auto rates = paper_rates(0.4);
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, rates);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_NEAR(eq.seeds[i], rates[i] / kPaperParams.gamma, 1e-12);
  }
}

TEST(MtcdTest, DownloadersAreIClassLambdaTimesA) {
  const auto rates = paper_rates(0.4);
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, rates);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_NEAR(eq.downloaders[i],
                (i + 1) * rates[i] * eq.per_file_factor, 1e-12);
  }
}

TEST(MtcdTest, OnlineTimeLinearInClassIndex) {
  // T_i = i A + 1/gamma: differences between consecutive classes equal A.
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, paper_rates(0.6));
  for (unsigned i = 1; i < 10; ++i) {
    EXPECT_NEAR(eq.metrics.online_time[i] - eq.metrics.online_time[i - 1],
                eq.per_file_factor, 1e-9);
  }
}

TEST(MtcdTest, DownloadPerFileEqualForAllClasses) {
  // The paper notes MTCD "maintains fairness" in download time per file.
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, paper_rates(0.3));
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_NEAR(eq.metrics.download_per_file[i], eq.per_file_factor, 1e-9);
  }
}

TEST(MtcdTest, ZeroRateClassGetsNaNMetrics) {
  std::vector<double> rates{1.0, 0.0, 0.5};
  const MtcdEquilibrium eq = mtcd_equilibrium(kPaperParams, rates);
  EXPECT_TRUE(std::isnan(eq.metrics.online_time[1]));
  EXPECT_FALSE(std::isnan(eq.metrics.online_time[0]));
  EXPECT_DOUBLE_EQ(eq.downloaders[1], 0.0);
}

TEST(MtcdTest, AllZeroRatesThrow) {
  EXPECT_THROW((void)mtcd_equilibrium(kPaperParams, std::vector<double>{0.0, 0.0}),
               ConfigError);
  EXPECT_THROW((void)mtcd_equilibrium(kPaperParams, std::vector<double>{}),
               ConfigError);
  EXPECT_THROW((void)mtcd_equilibrium(kPaperParams, std::vector<double>{-1.0}),
               ConfigError);
}

TEST(MtcdTest, InfeasibleParametersThrow) {
  // gamma << mu: the closed form would give a negative downloader count.
  FluidParams params = kPaperParams;
  params.gamma = 0.001;
  EXPECT_THROW((void)mtcd_equilibrium(params, std::vector<double>{1.0}),
               ConfigError);
}

TEST(MtcdTest, OdeTransientConvergesToClosedForm) {
  const auto rates = paper_rates(0.5);
  const MtcdEquilibrium expected = mtcd_equilibrium(kPaperParams, rates);
  const math::OdeRhs rhs = mtcd_rhs(kPaperParams, rates);
  const math::EquilibriumResult eq =
      math::find_equilibrium(rhs, std::vector<double>(20, 0.0));
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_NEAR(eq.y[i], expected.downloaders[i], 1e-4) << "x class " << i + 1;
    EXPECT_NEAR(eq.y[10 + i], expected.seeds[i], 1e-4) << "y class " << i + 1;
  }
}

TEST(MtcdTest, OdeRhsEmptyTorrentHasNoService) {
  // With x = y = 0 the share term must be 0/0 -> 0 and dx = lambda.
  const std::vector<double> rates{0.5, 0.25};
  const math::OdeRhs rhs = mtcd_rhs(kPaperParams, rates);
  std::vector<double> state(4, 0.0), dstate(4, -1.0);
  rhs(0.0, state, dstate);
  EXPECT_DOUBLE_EQ(dstate[0], 0.5);
  EXPECT_DOUBLE_EQ(dstate[1], 0.25);
  EXPECT_DOUBLE_EQ(dstate[2], 0.0);
  EXPECT_DOUBLE_EQ(dstate[3], 0.0);
}

TEST(MtcdTest, PerFileFactorDecreasesWhenSeedsStayLonger) {
  FluidParams sticky = kPaperParams;
  sticky.gamma = 0.03;  // seeds stay longer, more capacity
  const auto rates = paper_rates(0.5);
  EXPECT_LT(mtcd_per_file_factor(sticky, rates),
            mtcd_per_file_factor(kPaperParams, rates));
}

}  // namespace
}  // namespace btmf::fluid
