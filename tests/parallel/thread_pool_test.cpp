#include "btmf/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace btmf::parallel {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().num_threads(), 1u);
}

}  // namespace
}  // namespace btmf::parallel
