#include "btmf/parallel/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace btmf::parallel {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelForTest, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW((void)parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, ResultIndependentOfThreadCount) {
  std::vector<double> out1(200), out4(200);
  ThreadPool pool1(1), pool4(4);
  const auto body = [](std::size_t i) {
    return static_cast<double>(i) * 1.5;
  };
  parallel_for(pool1, 0, out1.size(), [&](std::size_t i) { out1[i] = body(i); });
  parallel_for(pool4, 0, out4.size(), [&](std::size_t i) { out4[i] = body(i); });
  EXPECT_EQ(out1, out4);
}

TEST(ParallelMapTest, PreservesOrder) {
  ThreadPool pool(3);
  const auto out =
      parallel_map(pool, 50, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapTest, GlobalPoolOverloadWorks) {
  const auto out = parallel_map(10, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out.front(), 1u);
  EXPECT_EQ(out.back(), 10u);
}

}  // namespace
}  // namespace btmf::parallel
