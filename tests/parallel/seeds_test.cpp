#include "btmf/parallel/seeds.h"

#include <gtest/gtest.h>

#include <set>

namespace btmf::parallel {
namespace {

TEST(SeedsTest, Deterministic) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_EQ(derive_seed(7, 123), derive_seed(7, 123));
}

TEST(SeedsTest, DistinctStreamsGetDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    seen.insert(derive_seed(42, s));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SeedsTest, DistinctMastersGetDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t m = 0; m < 1000; ++m) {
    seen.insert(derive_seed(m, 0));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SeedsTest, SplitMixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = splitmix64(0x123456789abcdef0ULL);
  const std::uint64_t b = splitmix64(0x123456789abcdef1ULL);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(SeedsTest, ConstexprUsable) {
  constexpr std::uint64_t s = derive_seed(1, 2);
  static_assert(s != 0);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace btmf::parallel
