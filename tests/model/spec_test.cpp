// ScenarioSpec: the canonical fingerprint must be sensitive to EVERY
// field (that is its whole contract — a cache keyed on it can never serve
// a stale result), and scheme_from_string must round-trip to_string.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "btmf/fluid/schemes.h"
#include "btmf/model/spec.h"
#include "btmf/util/error.h"

namespace btmf::model {
namespace {

using Mutation = std::pair<std::string, std::function<void(ScenarioSpec&)>>;

// One mutation per ScenarioSpec field (solver/ODE sub-fields and Adapt
// knobs included). Each leaves every other field at its default.
std::vector<Mutation> field_mutations() {
  std::vector<Mutation> m;
  auto add = [&m](std::string name, std::function<void(ScenarioSpec&)> fn) {
    m.emplace_back(std::move(name), std::move(fn));
  };
  add("num_files", [](ScenarioSpec& s) { s.num_files = 7; });
  add("correlation", [](ScenarioSpec& s) { s.correlation = 0.25; });
  add("visit_rate", [](ScenarioSpec& s) { s.visit_rate = 1.5; });
  add("fluid.mu", [](ScenarioSpec& s) { s.fluid.mu = 0.03; });
  add("fluid.eta", [](ScenarioSpec& s) { s.fluid.eta = 0.6; });
  add("fluid.gamma", [](ScenarioSpec& s) { s.fluid.gamma = 0.06; });
  add("scheme", [](ScenarioSpec& s) { s.scheme = fluid::SchemeKind::kMtcd; });
  add("rho", [](ScenarioSpec& s) { s.rho = 0.4; });
  add("rho_per_class", [](ScenarioSpec& s) {
    s.rho_per_class.assign(s.num_files, 0.3);
  });
  add("solver.residual_tol",
      [](ScenarioSpec& s) { s.solver.residual_tol *= 10.0; });
  add("solver.chunk_time", [](ScenarioSpec& s) { s.solver.chunk_time = 123.0; });
  add("solver.chunk_growth",
      [](ScenarioSpec& s) { s.solver.chunk_growth = 3.0; });
  add("solver.max_chunks", [](ScenarioSpec& s) { s.solver.max_chunks += 1; });
  add("solver.polish_with_newton", [](ScenarioSpec& s) {
    s.solver.polish_with_newton = !s.solver.polish_with_newton;
  });
  add("solver.clamp_nonnegative", [](ScenarioSpec& s) {
    s.solver.clamp_nonnegative = !s.solver.clamp_nonnegative;
  });
  add("solver.ode.rtol", [](ScenarioSpec& s) { s.solver.ode.rtol *= 10.0; });
  add("solver.ode.atol", [](ScenarioSpec& s) { s.solver.ode.atol *= 10.0; });
  add("solver.ode.initial_dt",
      [](ScenarioSpec& s) { s.solver.ode.initial_dt = 0.5; });
  add("solver.ode.max_dt", [](ScenarioSpec& s) { s.solver.ode.max_dt = 7.0; });
  add("solver.ode.max_steps",
      [](ScenarioSpec& s) { s.solver.ode.max_steps += 1; });
  add("solver.ode.clamp_nonnegative", [](ScenarioSpec& s) {
    s.solver.ode.clamp_nonnegative = !s.solver.ode.clamp_nonnegative;
  });
  add("transient_samples", [](ScenarioSpec& s) { s.transient_samples = 100; });
  add("horizon", [](ScenarioSpec& s) { s.horizon = 5000.0; });
  add("warmup", [](ScenarioSpec& s) { s.warmup = 1000.0; });
  add("seed", [](ScenarioSpec& s) { s.seed = 43; });
  add("cheater_fraction", [](ScenarioSpec& s) { s.cheater_fraction = 0.2; });
  add("abort_rate", [](ScenarioSpec& s) { s.abort_rate = 0.01; });
  add("adapt.enabled", [](ScenarioSpec& s) { s.adapt.enabled = true; });
  add("adapt.initial_rho", [](ScenarioSpec& s) { s.adapt.initial_rho = 0.3; });
  add("adapt.period", [](ScenarioSpec& s) { s.adapt.period = 25.0; });
  add("adapt.phi_lo", [](ScenarioSpec& s) { s.adapt.phi_lo = -0.01; });
  add("adapt.phi_hi", [](ScenarioSpec& s) { s.adapt.phi_hi = 0.01; });
  add("adapt.step_up", [](ScenarioSpec& s) { s.adapt.step_up = 0.2; });
  add("adapt.step_down", [](ScenarioSpec& s) { s.adapt.step_down = 0.05; });
  add("adapt.consecutive", [](ScenarioSpec& s) { s.adapt.consecutive = 3; });
  add("faults.tracker", [](ScenarioSpec& s) {
    s.faults.tracker_outages.push_back({/*start=*/100.0, /*duration=*/50.0});
  });
  add("faults.seed_failure", [](ScenarioSpec& s) {
    s.faults.seed_failures.push_back({/*start=*/100.0, /*duration=*/50.0});
  });
  add("faults.churn", [](ScenarioSpec& s) {
    s.faults.churn_bursts.push_back({/*time=*/100.0});
  });
  add("faults.bandwidth", [](ScenarioSpec& s) {
    s.faults.bandwidth_faults.push_back({/*start=*/100.0, /*duration=*/50.0});
  });
  add("num_chunks", [](ScenarioSpec& s) { s.num_chunks = 64; });
  add("chunk_policy",
      [](ScenarioSpec& s) { s.chunk_policy = sim::PiecePolicy::kRandom; });
  add("chunk_suppression",
      [](ScenarioSpec& s) { s.chunk_suppression = 0.25; });
  return m;
}

TEST(ModelSpecTest, FingerprintIsStableForIdenticalSpecs) {
  EXPECT_EQ(ScenarioSpec{}.fingerprint(), ScenarioSpec{}.fingerprint());
}

TEST(ModelSpecTest, FingerprintChangesWhenAnyFieldChanges) {
  const std::string base = ScenarioSpec{}.fingerprint();
  std::set<std::string> seen{base};
  for (const auto& [name, mutate] : field_mutations()) {
    ScenarioSpec spec;
    mutate(spec);
    const std::string fp = spec.fingerprint();
    EXPECT_NE(fp, base) << "fingerprint blind to field: " << name;
    EXPECT_TRUE(seen.insert(fp).second)
        << "fingerprint collision for field: " << name;
  }
}

// Editing any single number inside any fault entry must change the
// fingerprint (reproduce.cpp keys its disk cache on it).
TEST(ModelSpecTest, FingerprintCoversEveryFaultField) {
  auto with_faults = [] {
    ScenarioSpec s;
    s.faults.tracker_outages.push_back(
        {/*start=*/100.0, /*duration=*/50.0, /*drop=*/false,
         /*readmit_rate=*/1.0});
    s.faults.seed_failures.push_back({/*start=*/200.0, /*duration=*/40.0});
    s.faults.churn_bursts.push_back(
        {/*time=*/300.0, /*kill_fraction=*/0.5, /*progress_loss=*/1.0,
         /*backoff_rate=*/1.0});
    s.faults.bandwidth_faults.push_back(
        {/*start=*/400.0, /*duration=*/30.0, /*scale=*/0.5});
    return s;
  };
  const std::string base = with_faults().fingerprint();

  using FaultMutation = std::pair<std::string, std::function<void(ScenarioSpec&)>>;
  const std::vector<FaultMutation> mutations = {
      {"tracker.start",
       [](ScenarioSpec& s) { s.faults.tracker_outages[0].start = 111.0; }},
      {"tracker.duration",
       [](ScenarioSpec& s) { s.faults.tracker_outages[0].duration = 55.0; }},
      {"tracker.drop",
       [](ScenarioSpec& s) { s.faults.tracker_outages[0].drop = true; }},
      {"tracker.readmit_rate",
       [](ScenarioSpec& s) {
         s.faults.tracker_outages[0].readmit_rate = 0.5;
       }},
      {"seed.start",
       [](ScenarioSpec& s) { s.faults.seed_failures[0].start = 222.0; }},
      {"seed.duration",
       [](ScenarioSpec& s) { s.faults.seed_failures[0].duration = 44.0; }},
      {"churn.time",
       [](ScenarioSpec& s) { s.faults.churn_bursts[0].time = 333.0; }},
      {"churn.kill_fraction",
       [](ScenarioSpec& s) { s.faults.churn_bursts[0].kill_fraction = 0.25; }},
      {"churn.progress_loss",
       [](ScenarioSpec& s) { s.faults.churn_bursts[0].progress_loss = 0.5; }},
      {"churn.backoff_rate",
       [](ScenarioSpec& s) { s.faults.churn_bursts[0].backoff_rate = 2.0; }},
      {"bandwidth.start",
       [](ScenarioSpec& s) { s.faults.bandwidth_faults[0].start = 444.0; }},
      {"bandwidth.duration",
       [](ScenarioSpec& s) { s.faults.bandwidth_faults[0].duration = 33.0; }},
      {"bandwidth.scale",
       [](ScenarioSpec& s) { s.faults.bandwidth_faults[0].scale = 0.25; }},
  };
  std::set<std::string> seen{base};
  for (const auto& [name, mutate] : mutations) {
    ScenarioSpec spec = with_faults();
    mutate(spec);
    const std::string fp = spec.fingerprint();
    EXPECT_NE(fp, base) << "fingerprint blind to fault field: " << name;
    EXPECT_TRUE(seen.insert(fp).second)
        << "fingerprint collision for fault field: " << name;
  }
}

TEST(ModelSpecTest, ValidateRejectsOutOfRangeFields) {
  {
    ScenarioSpec s;
    s.correlation = 1.5;
    EXPECT_THROW(s.validate(), ConfigError);
  }
  {
    ScenarioSpec s;
    s.rho = -0.1;
    EXPECT_THROW(s.validate(), ConfigError);
  }
  {
    ScenarioSpec s;
    s.rho_per_class.assign(3, 0.5);  // must be empty or num_files long
    EXPECT_THROW(s.validate(), ConfigError);
  }
  {
    ScenarioSpec s;
    s.warmup = s.horizon;  // warmup must lie strictly before the horizon
    EXPECT_THROW(s.validate(), ConfigError);
  }
  {
    ScenarioSpec s;
    s.transient_samples = 1;
    EXPECT_THROW(s.validate(), ConfigError);
  }
  EXPECT_NO_THROW(ScenarioSpec{}.validate());
}

TEST(ModelSpecTest, SimConfigFromSpecMapsEveryRunKnob) {
  ScenarioSpec spec;
  spec.num_files = 4;
  spec.correlation = 0.7;
  spec.visit_rate = 1.3;
  spec.fluid.eta = 0.6;
  spec.scheme = fluid::SchemeKind::kMfcd;
  spec.rho = 0.2;
  spec.cheater_fraction = 0.1;
  spec.abort_rate = 0.02;
  spec.adapt.enabled = true;
  spec.horizon = 2500.0;
  spec.warmup = 750.0;
  spec.seed = 99;
  spec.faults.seed_failures.push_back({/*start=*/100.0, /*duration=*/50.0});

  const sim::SimConfig config = sim_config_from_spec(spec);
  EXPECT_EQ(config.num_files, spec.num_files);
  EXPECT_EQ(config.correlation, spec.correlation);
  EXPECT_EQ(config.visit_rate, spec.visit_rate);
  EXPECT_EQ(config.fluid.eta, spec.fluid.eta);
  EXPECT_EQ(config.scheme, spec.scheme);
  EXPECT_EQ(config.rho, spec.rho);
  EXPECT_EQ(config.cheater_fraction, spec.cheater_fraction);
  EXPECT_EQ(config.abort_rate, spec.abort_rate);
  EXPECT_TRUE(config.adapt.enabled);
  EXPECT_EQ(config.horizon, spec.horizon);
  EXPECT_EQ(config.warmup, spec.warmup);
  EXPECT_EQ(config.seed, spec.seed);
  ASSERT_EQ(config.faults.seed_failures.size(), 1u);
  EXPECT_EQ(config.faults.seed_failures[0].start, 100.0);
}

TEST(ModelSchemeStringTest, RoundTripsEverySchemeName) {
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
        fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
    EXPECT_EQ(fluid::scheme_from_string(fluid::to_string(scheme)), scheme);
  }
}

TEST(ModelSchemeStringTest, IsCaseInsensitive) {
  EXPECT_EQ(fluid::scheme_from_string("mtcd"), fluid::SchemeKind::kMtcd);
  EXPECT_EQ(fluid::scheme_from_string("Mtsd"), fluid::SchemeKind::kMtsd);
  EXPECT_EQ(fluid::scheme_from_string("mFcD"), fluid::SchemeKind::kMfcd);
  EXPECT_EQ(fluid::scheme_from_string("cmfsd"), fluid::SchemeKind::kCmfsd);
}

TEST(ModelSchemeStringTest, RejectsUnknownNames) {
  EXPECT_THROW((void)fluid::scheme_from_string("BITTORRENT"), ConfigError);
  EXPECT_THROW((void)fluid::scheme_from_string(""), ConfigError);
  EXPECT_THROW((void)fluid::scheme_from_string("MTCD "), ConfigError);
}

}  // namespace
}  // namespace btmf::model
