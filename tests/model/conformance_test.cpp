// Cross-backend conformance: every backend must reproduce the
// fluid-equilibrium steady state within its declared error class —
// analytically (fluid-transient, tight tolerance), statistically
// (kernel-sim, Monte-Carlo tolerance), or eta-matched (chunk-sim, which
// measures its own sharing efficiency). Scenarios are randomized from
// fixed seeds so the matrix is not hand-picked.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "btmf/model/backend.h"

namespace btmf::model {
namespace {

ScenarioSpec paper_spec(fluid::SchemeKind scheme, double p, unsigned k = 5) {
  ScenarioSpec spec;
  spec.num_files = k;
  spec.correlation = p;
  spec.scheme = scheme;
  spec.rho = 0.0;  // CMFSD: generous peers; ignored by the others
  spec.horizon = 4000.0;
  spec.warmup = 1000.0;
  spec.seed = 1234;
  return spec;
}

double rel_diff(double a, double b) { return std::abs(a - b) / std::abs(b); }

constexpr fluid::SchemeKind kAllSchemes[] = {
    fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
    fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd};

// The transient ODE integrated far past the mixing time must land on the
// steady state the equilibrium backend computes directly — this is an
// analytic check, so the tolerance is tight.
TEST(ModelConformanceTest, TransientConvergesToEquilibrium) {
  const Backend& equilibrium = require_backend("fluid-equilibrium");
  const Backend& transient = require_backend("fluid-transient");
  for (const fluid::SchemeKind scheme : kAllSchemes) {
    ScenarioSpec spec = paper_spec(scheme, 0.7);
    spec.horizon = 6000.0;  // give the slowest class time to settle
    const Outcome expected = equilibrium.evaluate_or_throw(spec);
    const Outcome got = transient.evaluate_or_throw(spec);
    EXPECT_LT(rel_diff(got.avg_online_per_file, expected.avg_online_per_file),
              0.02)
        << fluid::to_string(scheme);
    EXPECT_LT(rel_diff(got.avg_download_per_file,
                       expected.avg_download_per_file),
              0.02)
        << fluid::to_string(scheme);
  }
}

// MFCD is MTCD with per-file sessions glued into one visit: at the fluid
// level the two schemes are the *same model*, so both fluid backends must
// report bitwise-identical numbers for them — not merely close ones.
TEST(ModelConformanceTest, MfcdEqualsMtcdExactlyOnFluidBackends) {
  for (const char* name : {"fluid-equilibrium", "fluid-transient"}) {
    const Backend& backend = require_backend(name);
    for (const double p : {0.2, 0.7, 1.0}) {
      const Outcome mtcd =
          backend.evaluate_or_throw(paper_spec(fluid::SchemeKind::kMtcd, p));
      const Outcome mfcd =
          backend.evaluate_or_throw(paper_spec(fluid::SchemeKind::kMfcd, p));
      EXPECT_DOUBLE_EQ(mtcd.avg_online_per_file, mfcd.avg_online_per_file)
          << name << " p=" << p;
      EXPECT_DOUBLE_EQ(mtcd.avg_download_per_file, mfcd.avg_download_per_file)
          << name << " p=" << p;
      ASSERT_EQ(mtcd.per_class.num_classes(), mfcd.per_class.num_classes());
      for (std::size_t i = 0; i < mtcd.per_class.num_classes(); ++i) {
        const double a = mtcd.per_class.online_per_file[i];
        const double b = mfcd.per_class.online_per_file[i];
        // Zero-rate classes (e.g. everything but class K at p = 1) are
        // NaN in both models; the populated ones must agree bitwise.
        EXPECT_EQ(std::isnan(a), std::isnan(b))
            << name << " p=" << p << " class " << i + 1;
        if (!std::isnan(a) && !std::isnan(b)) {
          EXPECT_DOUBLE_EQ(a, b) << name << " p=" << p << " class " << i + 1;
        }
      }
    }
  }
}

// Randomized property check: for scenarios drawn from fixed seeds, the
// event-kernel simulation must track the fluid steady state for every
// scheme within Monte-Carlo tolerance. A deterministic xorshift keeps the
// draw reproducible without std::random (whose streams are unspecified).
struct RandomScenario {
  unsigned k;
  double p;
  double lambda0;
};

RandomScenario draw_scenario(std::uint64_t seed) {
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  auto uniform = [&next](double lo, double hi) {
    return lo + (hi - lo) *
                    (static_cast<double>(next() >> 11) /
                     static_cast<double>(UINT64_C(1) << 53));
  };
  RandomScenario s;
  s.k = 2 + static_cast<unsigned>(next() % 4);  // K in [2, 5]
  s.p = uniform(0.3, 1.0);
  s.lambda0 = uniform(0.6, 1.6);
  return s;
}

class ModelConformanceRandomized
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelConformanceRandomized, KernelSimTracksEquilibrium) {
  const RandomScenario scenario = draw_scenario(GetParam());
  const Backend& equilibrium = require_backend("fluid-equilibrium");
  const Backend& kernel = require_backend("kernel-sim");
  for (const fluid::SchemeKind scheme : kAllSchemes) {
    ScenarioSpec spec = paper_spec(scheme, scenario.p, scenario.k);
    spec.visit_rate = scenario.lambda0;
    spec.seed = GetParam();
    const Outcome expected = equilibrium.evaluate(spec);
    const Outcome got = kernel.evaluate(spec);
    // p >= 0.3 and no stochastic-only knobs: every pair must be supported.
    ASSERT_TRUE(expected.ok()) << expected.error;
    ASSERT_TRUE(got.ok()) << got.error;
    EXPECT_LT(rel_diff(got.avg_online_per_file, expected.avg_online_per_file),
              0.15)
        << fluid::to_string(scheme) << " K=" << scenario.k
        << " p=" << scenario.p << " lambda0=" << scenario.lambda0;
  }
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ModelConformanceRandomized,
                         ::testing::Values(UINT64_C(101), UINT64_C(202),
                                           UINT64_C(303)));

// chunk-sim conformance is eta-matched: the protocol substrate *measures*
// its sharing efficiency, so the fluid model is re-evaluated at the
// emergent eta-hat before comparing download times (docs/BACKENDS.md).
TEST(ModelConformanceTest, ChunkSimMatchesFluidAtEmergentEta) {
  ScenarioSpec spec = paper_spec(fluid::SchemeKind::kMtcd, 1.0, /*k=*/1);
  const Outcome chunk = require_backend("chunk-sim").evaluate_or_throw(spec);
  ASSERT_TRUE(chunk.chunk.has_value());
  ASSERT_GT(chunk.chunk->emergent_eta, 0.0);

  ScenarioSpec matched = spec;
  matched.fluid.eta = chunk.chunk->emergent_eta;
  const Outcome fluid_outcome =
      require_backend("fluid-equilibrium").evaluate_or_throw(matched);
  EXPECT_LT(rel_diff(chunk.avg_download_per_file,
                     fluid_outcome.avg_download_per_file),
            0.10)
      << "eta_hat=" << chunk.chunk->emergent_eta;
}

// The multi-file conformance matrix: all four schemes run on the chunk
// substrate at K = 3 and are compared eta-matched against the paper's
// fluid models — zero declared-unsupported cells. Per-class times are
// checked where the fluid's class structure is the protocol's (MTCD,
// MTSD, CMFSD); MFCD's merged swarm genuinely mixes classes (one bundle
// swarm serves everyone, so small classes ride the large ones) while the
// fluid simply equates MFCD to MTCD, so only the arrival-weighted
// headline is comparable there — a protocol-level finding documented in
// docs/PROTOCOL.md.
TEST(ModelConformanceTest, MultiFileChunkSimMatchesFluidAtEmergentEta) {
  const Backend& chunk_backend = require_backend("chunk-sim");
  const Backend& equilibrium = require_backend("fluid-equilibrium");
  for (const fluid::SchemeKind scheme : kAllSchemes) {
    ScenarioSpec spec = paper_spec(scheme, 0.5, /*k=*/3);
    spec.visit_rate = 2.0;
    spec.rho = 0.5;
    spec.horizon = 3000.0;
    spec.warmup = 800.0;
    spec.seed = 11;
    ASSERT_FALSE(chunk_backend.unsupported_reason(spec).has_value())
        << fluid::to_string(scheme) << " must be a supported K > 1 cell";
    const Outcome chunk = chunk_backend.evaluate_or_throw(spec);
    ASSERT_TRUE(chunk.chunk.has_value());
    ASSERT_GT(chunk.chunk->emergent_eta, 0.0);

    ScenarioSpec matched = spec;
    matched.fluid.eta = chunk.chunk->emergent_eta;
    const Outcome fluid_outcome = equilibrium.evaluate_or_throw(matched);
    EXPECT_LT(rel_diff(chunk.avg_download_per_file,
                       fluid_outcome.avg_download_per_file),
              0.15)
        << fluid::to_string(scheme)
        << " eta_hat=" << chunk.chunk->emergent_eta
        << " sim=" << chunk.avg_download_per_file
        << " fluid=" << fluid_outcome.avg_download_per_file;
    if (scheme == fluid::SchemeKind::kMfcd) continue;
    ASSERT_EQ(chunk.per_class.num_classes(),
              fluid_outcome.per_class.num_classes());
    for (std::size_t i = 0; i < chunk.per_class.num_classes(); ++i) {
      EXPECT_LT(rel_diff(chunk.per_class.download_time[i],
                         fluid_outcome.per_class.download_time[i]),
                0.15)
          << fluid::to_string(scheme) << " class " << i + 1;
    }
  }
}

// The stochastic-epidemic CTMC has the fluid ODE as its mean-field limit:
// on homogeneous scenarios its replication mean must land on the
// equilibrium numbers within Monte-Carlo tolerance, for every scheme its
// capability bits admit (CMFSD is a declared refusal, asserted below).
TEST(ModelConformanceTest, EpidemicMeanTracksEquilibrium) {
  const Backend& equilibrium = require_backend("fluid-equilibrium");
  const Backend& epidemic = require_backend("stochastic-epidemic");
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
        fluid::SchemeKind::kMfcd}) {
    const ScenarioSpec spec = paper_spec(scheme, 0.7);
    const Outcome expected = equilibrium.evaluate_or_throw(spec);
    const Outcome got = epidemic.evaluate_or_throw(spec);
    EXPECT_LT(rel_diff(got.avg_online_per_file, expected.avg_online_per_file),
              0.15)
        << fluid::to_string(scheme);
    EXPECT_LT(
        rel_diff(got.avg_download_per_file, expected.avg_download_per_file),
        0.15)
        << fluid::to_string(scheme);
  }
  EXPECT_EQ(epidemic.evaluate(paper_spec(fluid::SchemeKind::kCmfsd, 0.7))
                .status,
            OutcomeStatus::kUnsupported);
}

// Time-varying arrivals: no equilibrium exists, so the three backends
// that integrate/sample lambda(t) — fluid-transient (ODE), kernel-sim
// (thinned event stream), stochastic-epidemic (thinned CTMC) — must
// agree with each other on the window-mean Little's-law readout.
TEST(ModelConformanceTest, TimeVaryingArrivalBackendsAgree) {
  ScenarioSpec spec = paper_spec(fluid::SchemeKind::kMtcd, 0.7);
  spec.arrival.kind = fluid::ArrivalKind::kDiurnal;
  spec.arrival.amplitude = 0.6;
  spec.arrival.period = 400.0;
  const Outcome transient =
      require_backend("fluid-transient").evaluate_or_throw(spec);
  const Outcome kernel = require_backend("kernel-sim").evaluate_or_throw(spec);
  const Outcome epidemic =
      require_backend("stochastic-epidemic").evaluate_or_throw(spec);
  EXPECT_LT(rel_diff(kernel.avg_download_per_file,
                     transient.avg_download_per_file),
            0.20)
      << "kernel=" << kernel.avg_download_per_file
      << " transient=" << transient.avg_download_per_file;
  EXPECT_LT(rel_diff(epidemic.avg_download_per_file,
                     transient.avg_download_per_file),
            0.20)
      << "epidemic=" << epidemic.avg_download_per_file
      << " transient=" << transient.avg_download_per_file;
  // The stationary backend must refuse the same spec, typed.
  EXPECT_EQ(require_backend("fluid-equilibrium").evaluate(spec).status,
            OutcomeStatus::kUnsupported);
}

// Bandwidth classes on the stochastic backends: more upload capacity must
// mean faster downloads (a directional check — no fluid reference models
// heterogeneous classes). Both simulators support the knob; the fluid
// and epidemic backends refuse it with a typed reason.
TEST(ModelConformanceTest, BandwidthClassesShiftSimBackendsDirectionally) {
  for (const char* name : {"kernel-sim", "chunk-sim"}) {
    const Backend& backend = require_backend(name);
    ScenarioSpec slow = paper_spec(fluid::SchemeKind::kMtcd, 0.7, /*k=*/3);
    slow.horizon = 2000.0;
    slow.warmup = 500.0;
    slow.bandwidth_classes = {{/*weight=*/1.0, /*upload_scale=*/0.5,
                               /*download_cap=*/0.0}};
    ScenarioSpec fast = slow;
    fast.bandwidth_classes[0].upload_scale = 1.5;
    const Outcome slow_outcome = backend.evaluate_or_throw(slow);
    const Outcome fast_outcome = backend.evaluate_or_throw(fast);
    EXPECT_LT(fast_outcome.avg_download_per_file,
              slow_outcome.avg_download_per_file)
        << name;
  }
  ScenarioSpec spec = paper_spec(fluid::SchemeKind::kMtcd, 0.7);
  spec.bandwidth_classes = {{1.0, 0.5, 0.0}, {1.0, 1.5, 0.0}};
  for (const char* name :
       {"fluid-equilibrium", "fluid-transient", "stochastic-epidemic"}) {
    const Outcome outcome = require_backend(name).evaluate(spec);
    EXPECT_EQ(outcome.status, OutcomeStatus::kUnsupported) << name;
    EXPECT_NE(outcome.error.find("bandwidth"), std::string::npos) << name;
  }
  // The one combination kernel-sim cannot express: CMFSD x classes.
  spec.scheme = fluid::SchemeKind::kCmfsd;
  const Outcome refused = require_backend("kernel-sim").evaluate(spec);
  EXPECT_EQ(refused.status, OutcomeStatus::kUnsupported);
  EXPECT_NE(refused.error.find("CMFSD"), std::string::npos);
}

// The demand matrix has zero silently-wrong cells: every backend crossed
// with every demand shape either evaluates to finite numbers or refuses
// with a typed, non-empty reason — never a crash, never a NaN headline.
TEST(ModelConformanceTest, DemandMatrixCellsEvaluateOrDeclare) {
  fluid::ArrivalProcess diurnal;
  diurnal.kind = fluid::ArrivalKind::kDiurnal;
  diurnal.amplitude = 0.5;
  diurnal.period = 500.0;
  fluid::ArrivalProcess flash;
  flash.kind = fluid::ArrivalKind::kFlashCrowd;
  flash.t0 = 1200.0;
  flash.width = 200.0;
  flash.boost = 3.0;
  const std::vector<fluid::BandwidthClass> classes = {{2.0, 0.7, 0.0},
                                                      {1.0, 1.6, 4.0}};
  struct DemandCell {
    fluid::ArrivalProcess arrival;
    std::vector<fluid::BandwidthClass> bandwidth;
  };
  const DemandCell cells[] = {{{}, {}},
                              {diurnal, {}},
                              {flash, {}},
                              {{}, classes},
                              {diurnal, classes}};
  for (const Backend* backend : backend_registry()) {
    for (std::size_t c = 0; c < std::size(cells); ++c) {
      for (const fluid::SchemeKind scheme :
           {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kCmfsd}) {
        ScenarioSpec spec = paper_spec(scheme, 0.7, /*k=*/2);
        spec.horizon = 1600.0;
        spec.warmup = 400.0;
        spec.rho = 0.5;
        spec.arrival = cells[c].arrival;
        spec.bandwidth_classes = cells[c].bandwidth;
        const Outcome outcome = backend->evaluate(spec);
        const std::string where = std::string(backend->name()) + " cell " +
                                  std::to_string(c) + " " +
                                  std::string(fluid::to_string(scheme));
        ASSERT_NE(outcome.status, OutcomeStatus::kFailed)
            << where << ": " << outcome.error;
        if (outcome.status == OutcomeStatus::kUnsupported) {
          EXPECT_FALSE(outcome.error.empty()) << where;
        } else {
          EXPECT_TRUE(std::isfinite(outcome.avg_download_per_file)) << where;
          EXPECT_GT(outcome.avg_download_per_file, 0.0) << where;
        }
      }
    }
  }
}

// The piece-selection policy seam reaches through the model layer: a
// non-default policy changes the chunk backend's outcome and nothing
// else accepts it.
TEST(ModelConformanceTest, PiecePolicyFlowsThroughTheBackendSeam) {
  ScenarioSpec spec = paper_spec(fluid::SchemeKind::kMtcd, 1.0, /*k=*/1);
  spec.horizon = 1500.0;
  spec.warmup = 400.0;
  const Outcome rarest = require_backend("chunk-sim").evaluate_or_throw(spec);
  spec.chunk_policy = sim::PiecePolicy::kRandom;
  const Outcome random = require_backend("chunk-sim").evaluate_or_throw(spec);
  EXPECT_NE(rarest.avg_download_per_file, random.avg_download_per_file);
}

}  // namespace
}  // namespace btmf::model
