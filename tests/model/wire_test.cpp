#include "btmf/model/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "btmf/fluid/demand.h"
#include "btmf/fluid/schemes.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::model {
namespace {

/// A spec exercising every fingerprint section: per-class rho, Adapt,
/// cheaters/aborts, a fault of each kind, non-default solver tolerances.
ScenarioSpec loaded_spec() {
  ScenarioSpec spec;
  spec.num_files = 7;
  spec.correlation = 0.35;
  spec.visit_rate = 1.25;
  spec.fluid.mu = 0.031;
  spec.fluid.eta = 0.77;
  spec.fluid.gamma = 0.043;
  spec.scheme = fluid::SchemeKind::kCmfsd;
  spec.rho = 0.5;
  spec.rho_per_class = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  spec.solver.ode.rtol = 1e-9;
  spec.solver.ode.atol = 1e-11;
  spec.transient_samples = 333;
  spec.horizon = 4321.5;
  spec.warmup = 1000.25;
  spec.seed = 987654321;
  spec.cheater_fraction = 0.125;
  spec.abort_rate = 0.0625;
  spec.adapt.enabled = true;
  spec.adapt.initial_rho = 0.05;
  spec.adapt.consecutive = 3;
  spec.faults.tracker_outages.push_back({500.0, 200.0, true, 2.5});
  spec.faults.seed_failures.push_back({100.0, 50.0});
  spec.faults.churn_bursts.push_back({1200.0, 0.5, 0.75, 1.5});
  spec.faults.bandwidth_faults.push_back({300.0, 100.0, 0.5});
  spec.num_chunks = 48;
  spec.chunk_policy = sim::PiecePolicy::kModeSuppression;
  spec.chunk_suppression = 0.85;
  return spec;
}

TEST(ModelWireTest, EncodeIsTheFingerprint) {
  const ScenarioSpec spec = loaded_spec();
  EXPECT_EQ(encode_spec(spec), spec.fingerprint());
}

TEST(ModelWireTest, DecodeInvertsEncodeOnALoadedSpec) {
  const ScenarioSpec spec = loaded_spec();
  const ScenarioSpec decoded = decode_spec(encode_spec(spec));
  // Fingerprint equality IS the contract: every result-affecting field
  // round-tripped bit-exactly.
  EXPECT_EQ(decoded.fingerprint(), spec.fingerprint());
  EXPECT_EQ(decoded.seed, spec.seed);
  EXPECT_EQ(decoded.rho_per_class, spec.rho_per_class);
  EXPECT_TRUE(decoded.adapt.enabled);
  ASSERT_EQ(decoded.faults.tracker_outages.size(), 1u);
  EXPECT_EQ(decoded.faults.tracker_outages[0].readmit_rate, 2.5);
  ASSERT_EQ(decoded.faults.churn_bursts.size(), 1u);
  EXPECT_EQ(decoded.faults.churn_bursts[0].progress_loss, 0.75);
}

TEST(ModelWireTest, DecodeInvertsEncodeOnTheDefaultSpec) {
  const ScenarioSpec spec;
  EXPECT_EQ(decode_spec(encode_spec(spec)).fingerprint(),
            spec.fingerprint());
}

TEST(ModelWireTest, ExecutionKnobsAreExcludedBothWays) {
  ScenarioSpec spec;
  spec.shards = 8;
  spec.kernel_threads = 4;
  const ScenarioSpec decoded = decode_spec(encode_spec(spec));
  // The serving process decides its own execution configuration.
  EXPECT_EQ(decoded.shards, 1u);
  EXPECT_EQ(decoded.kernel_threads, 1u);
  EXPECT_EQ(decoded.fingerprint(), spec.fingerprint());
}

TEST(ModelWireTest, RejectsGarbage) {
  EXPECT_THROW(decode_spec(""), ConfigError);
  EXPECT_THROW(decode_spec("not a spec"), ConfigError);
  EXPECT_THROW(decode_spec("k=10"), ConfigError);  // missing keys
}

TEST(ModelWireTest, RejectsUnknownAndDuplicateKeys) {
  const std::string wire = encode_spec(ScenarioSpec{});
  EXPECT_THROW(decode_spec(wire + ";mystery=1"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";k=10"), ConfigError);
}

TEST(ModelWireTest, DemandKeysRoundTripOnTheWire) {
  ScenarioSpec spec = loaded_spec();
  spec.arrival = fluid::parse_arrival("diurnal,0.6,400,25");
  spec.bandwidth_classes = fluid::parse_classes("2,0.5,0|1,1.5,12.5");
  spec.epidemic_replications = 16;
  const std::string wire = encode_spec(spec);
  EXPECT_NE(wire.find(";arrival=diurnal,"), std::string::npos);
  EXPECT_NE(wire.find(";classes="), std::string::npos);
  EXPECT_NE(wire.find(";ereps=16"), std::string::npos);
  const ScenarioSpec decoded = decode_spec(wire);
  EXPECT_EQ(decoded.fingerprint(), spec.fingerprint());
  EXPECT_EQ(decoded.arrival.kind, fluid::ArrivalKind::kDiurnal);
  EXPECT_EQ(decoded.arrival.amplitude, 0.6);
  ASSERT_EQ(decoded.bandwidth_classes.size(), 2u);
  EXPECT_EQ(decoded.bandwidth_classes[1].download_cap, 12.5);
  EXPECT_EQ(decoded.epidemic_replications, 16u);
}

TEST(ModelWireTest, HomogeneousSpecsOmitDemandKeysFromTheWire) {
  // Pre-demand-model fingerprints must stay byte-identical, so the
  // homogeneous defaults never appear on the wire.
  const std::string wire = encode_spec(ScenarioSpec{});
  EXPECT_EQ(wire.find("arrival="), std::string::npos);
  EXPECT_EQ(wire.find("classes="), std::string::npos);
  EXPECT_EQ(wire.find("ereps="), std::string::npos);
}

TEST(ModelWireTest, RejectsNonCanonicalDemandKeys) {
  // A wire that spells out a homogeneous default is not one our encoder
  // produced; accepting it would let two wires name the same spec.
  const std::string wire = encode_spec(ScenarioSpec{});
  EXPECT_THROW(decode_spec(wire + ";arrival=poisson"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";classes="), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";ereps=8"), ConfigError);
}

TEST(ModelWireTest, RejectsMalformedArrivalOnTheWire) {
  const std::string wire = encode_spec(ScenarioSpec{});
  // Unknown kind, wrong arity, NaN / out-of-domain parameters.
  EXPECT_THROW(decode_spec(wire + ";arrival=bursty,1,2"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";arrival=diurnal,0.5"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";arrival=diurnal,nan,400,0"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";arrival=diurnal,-0.5,400,0"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";arrival=diurnal,0.5,400,0junk"),
               ConfigError);
  EXPECT_THROW(decode_spec(wire + ";arrival=flash,0,50,0.5,0,1"),
               ConfigError);  // boost < 1
  EXPECT_THROW(decode_spec(wire + ";arrival=flash,0,50,2,0,0"),
               ConfigError);  // zero pulses
}

TEST(ModelWireTest, RejectsMalformedClassesOnTheWire) {
  const std::string wire = encode_spec(ScenarioSpec{});
  EXPECT_THROW(decode_spec(wire + ";classes=1,1"), ConfigError);  // arity
  EXPECT_THROW(decode_spec(wire + ";classes=nan,1,0"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";classes=1,-2,0"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";classes=1,1,0|"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";classes=1,1,0junk"), ConfigError);
  EXPECT_THROW(decode_spec(wire + ";ereps=0"), ConfigError);
}

TEST(ModelWireTest, RejectsOutOfRangeValues) {
  ScenarioSpec spec;
  std::string wire = encode_spec(spec);
  const std::string from = "p=" + util::format_double_exact(
                                      spec.correlation);
  const std::size_t at = wire.find(from);
  ASSERT_NE(at, std::string::npos);
  wire.replace(at, from.size(), "p=2.5");  // validate() must refuse
  EXPECT_THROW(decode_spec(wire), ConfigError);
}

}  // namespace
}  // namespace btmf::model
