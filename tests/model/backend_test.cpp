// The Backend seam: registry contents, typed unsupported/failed outcomes
// (no backend may crash on an out-of-domain spec), capability gating, the
// core::evaluate_scheme wrapper identity, and per-seed determinism of the
// stochastic backends.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "btmf/core/evaluate.h"
#include "btmf/core/scenario.h"
#include "btmf/model/backend.h"
#include "btmf/util/error.h"

namespace btmf::model {
namespace {

constexpr const char* kAllBackends[] = {"fluid-equilibrium", "fluid-transient",
                                        "kernel-sim", "chunk-sim",
                                        "stochastic-epidemic"};

// Small, fast spec the stochastic backends can run in milliseconds.
ScenarioSpec small_spec(fluid::SchemeKind scheme, double p) {
  ScenarioSpec spec;
  spec.num_files = 3;
  spec.correlation = p;
  spec.scheme = scheme;
  spec.horizon = 800.0;
  spec.warmup = 200.0;
  return spec;
}

TEST(ModelBackendTest, RegistryListsTheFiveBackendsInOrder) {
  const auto& registry = backend_registry();
  ASSERT_EQ(registry.size(), 5u);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(registry[i]->name(), kAllBackends[i]);
  }
}

TEST(ModelBackendTest, FindBackendReturnsNullForUnknownNames) {
  for (const char* name : kAllBackends) {
    EXPECT_NE(find_backend(name), nullptr) << name;
  }
  EXPECT_EQ(find_backend("fluid"), nullptr);
  EXPECT_EQ(find_backend(""), nullptr);
}

TEST(ModelBackendTest, RequireBackendThrowsNamingTheKnownBackends) {
  try {
    (void)require_backend("no-such-backend");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    for (const char* name : kAllBackends) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

// The universal rule: CMFSD at p = 0 is a typed kUnsupported from EVERY
// backend that evaluates CMFSD at all — same message everywhere, never a
// crash, never a throw from evaluate(). Backends whose scheme bits
// exclude CMFSD outright (stochastic-epidemic) refuse with their own
// typed reason instead.
TEST(ModelBackendTest, CmfsdAtZeroCorrelationIsUnsupportedEverywhere) {
  ScenarioSpec spec = small_spec(fluid::SchemeKind::kCmfsd, 0.0);
  spec.num_files = 1;  // keep chunk-sim's K = 1 gate out of the way
  for (const Backend* backend : backend_registry()) {
    const Outcome outcome = backend->evaluate(spec);
    EXPECT_EQ(outcome.status, OutcomeStatus::kUnsupported) << backend->name();
    const std::size_t scheme_bit =
        static_cast<std::size_t>(fluid::SchemeKind::kCmfsd);
    if (backend->capabilities().schemes[scheme_bit]) {
      EXPECT_EQ(outcome.error,
                "CMFSD needs p > 0 (no peer requests any file at p=0)")
          << backend->name();
    } else {
      EXPECT_NE(outcome.error.find("CMFSD"), std::string::npos)
          << backend->name();
    }
    EXPECT_THROW((void)backend->evaluate_or_throw(spec), ConfigError)
        << backend->name();
  }
}

TEST(ModelBackendTest, OnlyTheClosedFormsTakeTheZeroCorrelationLimit) {
  const ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 0.0);
  for (const Backend* backend : backend_registry()) {
    if (backend->capabilities().max_files != 0 &&
        spec.num_files > backend->capabilities().max_files) {
      continue;  // chunk-sim: gated on K, checked separately below
    }
    const Outcome outcome = backend->evaluate(spec);
    if (backend->capabilities().zero_correlation) {
      EXPECT_EQ(outcome.status, OutcomeStatus::kOk) << backend->name();
    } else {
      EXPECT_EQ(outcome.status, OutcomeStatus::kUnsupported) << backend->name();
      EXPECT_FALSE(outcome.error.empty()) << backend->name();
    }
  }
  EXPECT_TRUE(
      require_backend("fluid-equilibrium").evaluate(spec).ok());
}

TEST(ModelBackendTest, CapabilityGatesRefuseWhatABackendCannotModel) {
  // Fault plans only replay on the event kernel.
  {
    ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 0.5);
    spec.faults.seed_failures.push_back({/*start=*/100.0, /*duration=*/50.0});
    for (const char* name : {"fluid-equilibrium", "fluid-transient"}) {
      const Outcome outcome = require_backend(name).evaluate(spec);
      EXPECT_EQ(outcome.status, OutcomeStatus::kUnsupported) << name;
      EXPECT_NE(outcome.error.find("fault"), std::string::npos) << name;
    }
    EXPECT_FALSE(
        require_backend("kernel-sim").unsupported_reason(spec).has_value());
  }
  // The Adapt controller and cheaters are kernel-sim-only.
  {
    ScenarioSpec spec = small_spec(fluid::SchemeKind::kCmfsd, 0.9);
    spec.adapt.enabled = true;
    EXPECT_EQ(require_backend("fluid-equilibrium").evaluate(spec).status,
              OutcomeStatus::kUnsupported);
    spec.adapt.enabled = false;
    spec.cheater_fraction = 0.3;
    EXPECT_EQ(require_backend("fluid-transient").evaluate(spec).status,
              OutcomeStatus::kUnsupported);
    EXPECT_FALSE(
        require_backend("kernel-sim").unsupported_reason(spec).has_value());
  }
  // Per-class rho is a fluid-model construct the kernel does not model.
  {
    ScenarioSpec spec = small_spec(fluid::SchemeKind::kCmfsd, 0.9);
    spec.rho_per_class.assign(spec.num_files, 0.5);
    EXPECT_EQ(require_backend("kernel-sim").evaluate(spec).status,
              OutcomeStatus::kUnsupported);
    EXPECT_FALSE(require_backend("fluid-equilibrium")
                     .unsupported_reason(spec)
                     .has_value());
  }
  // chunk-sim runs true multi-file torrents now, up to its piece-bitmap
  // width of 32 files.
  {
    ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 1.0);
    EXPECT_FALSE(
        require_backend("chunk-sim").unsupported_reason(spec).has_value());
    spec.num_files = 33;
    const Outcome outcome = require_backend("chunk-sim").evaluate(spec);
    EXPECT_EQ(outcome.status, OutcomeStatus::kUnsupported);
    EXPECT_NE(outcome.error.find("at most 32"), std::string::npos);
  }
  // Piece-selection policies exist only at the chunk level; every other
  // backend refuses rather than silently ignoring the knob.
  {
    ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 0.5);
    spec.chunk_policy = sim::PiecePolicy::kModeSuppression;
    for (const char* name : {"fluid-equilibrium", "fluid-transient",
                             "kernel-sim"}) {
      const Outcome outcome = require_backend(name).evaluate(spec);
      EXPECT_EQ(outcome.status, OutcomeStatus::kUnsupported) << name;
      EXPECT_NE(outcome.error.find("piece"), std::string::npos) << name;
    }
    EXPECT_FALSE(
        require_backend("chunk-sim").unsupported_reason(spec).has_value());
  }
}

TEST(ModelBackendTest, MalformedSpecComesBackAsTypedFailure) {
  ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 0.5);
  spec.correlation = 1.5;
  for (const Backend* backend : backend_registry()) {
    const Outcome outcome = backend->evaluate(spec);
    EXPECT_EQ(outcome.status, OutcomeStatus::kFailed) << backend->name();
    EXPECT_FALSE(outcome.error.empty()) << backend->name();
    EXPECT_THROW((void)backend->evaluate_or_throw(spec), ConfigError)
        << backend->name();
  }
}

TEST(ModelBackendTest, OutcomeStatusToStringIsStable) {
  EXPECT_STREQ(to_string(OutcomeStatus::kOk), "ok");
  EXPECT_STREQ(to_string(OutcomeStatus::kUnsupported), "unsupported");
  EXPECT_STREQ(to_string(OutcomeStatus::kFailed), "failed");
}

// core::evaluate_scheme is a thin wrapper over fluid-equilibrium: same
// inputs must give bit-identical numbers through either door.
TEST(ModelBackendTest, CoreEvaluateSchemeIsTheFluidEquilibriumBackend) {
  core::ScenarioConfig scenario;
  scenario.num_files = 5;
  scenario.correlation = 0.9;
  core::EvaluateOptions options;
  options.rho = 0.3;

  ScenarioSpec spec;
  spec.num_files = 5;
  spec.correlation = 0.9;
  spec.scheme = fluid::SchemeKind::kCmfsd;
  spec.rho = 0.3;

  const core::SchemeReport report =
      core::evaluate_scheme(scenario, fluid::SchemeKind::kCmfsd, options);
  const Outcome outcome =
      require_backend("fluid-equilibrium").evaluate_or_throw(spec);

  EXPECT_DOUBLE_EQ(report.avg_online_per_file, outcome.avg_online_per_file);
  EXPECT_DOUBLE_EQ(report.avg_download_per_file,
                   outcome.avg_download_per_file);
  EXPECT_DOUBLE_EQ(report.avg_online_per_user, outcome.avg_online_per_user);
  ASSERT_EQ(report.per_class.num_classes(), outcome.per_class.num_classes());
  for (std::size_t i = 0; i < report.per_class.num_classes(); ++i) {
    EXPECT_DOUBLE_EQ(report.per_class.online_per_file[i],
                     outcome.per_class.online_per_file[i]);
    EXPECT_DOUBLE_EQ(report.per_class.download_per_file[i],
                     outcome.per_class.download_per_file[i]);
  }
  ASSERT_EQ(report.class_entry_rates.size(),
            outcome.class_entry_rates.size());
  for (std::size_t i = 0; i < report.class_entry_rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.class_entry_rates[i],
                     outcome.class_entry_rates[i]);
  }
}

TEST(ModelBackendTest, StochasticBackendsAreDeterministicPerSeed) {
  const Backend& kernel = require_backend("kernel-sim");
  ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 0.5);
  spec.seed = 7;
  const Outcome first = kernel.evaluate_or_throw(spec);
  const Outcome second = kernel.evaluate_or_throw(spec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.avg_online_per_file, second.avg_online_per_file);
  EXPECT_EQ(first.avg_download_per_file, second.avg_download_per_file);
  ASSERT_TRUE(first.sim.has_value());
  ASSERT_TRUE(second.sim.has_value());
  for (std::size_t i = 0; i < first.sim->classes.size(); ++i) {
    EXPECT_EQ(first.sim->classes[i].completed_users,
              second.sim->classes[i].completed_users);
  }

  spec.seed = 8;
  const Outcome other = kernel.evaluate_or_throw(spec);
  EXPECT_NE(first.avg_online_per_file, other.avg_online_per_file);
}

TEST(ModelBackendTest, AttachmentsMatchDeclaredCapabilities) {
  for (const Backend* backend : backend_registry()) {
    const BackendCapabilities caps = backend->capabilities();
    ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd, 0.8);
    if (caps.max_files != 0) spec.num_files = caps.max_files;
    const Outcome outcome = backend->evaluate(spec);
    ASSERT_TRUE(outcome.ok()) << backend->name() << ": " << outcome.error;
    EXPECT_EQ(outcome.trajectory.has_value(), caps.trajectory)
        << backend->name();
    EXPECT_EQ(outcome.sim.has_value(), caps.sim_counters) << backend->name();
    EXPECT_EQ(outcome.chunk.has_value(),
              std::string(backend->name()) == "chunk-sim")
        << backend->name();
    if (outcome.trajectory) {
      EXPECT_FALSE(outcome.trajectory->time.empty()) << backend->name();
      EXPECT_EQ(outcome.trajectory->time.size(),
                outcome.trajectory->downloaders.size())
          << backend->name();
      EXPECT_EQ(outcome.trajectory->time.size(),
                outcome.trajectory->seeds.size())
          << backend->name();
    }
  }
}

}  // namespace
}  // namespace btmf::model
