// Unit tests of the stochastic-epidemic backend in isolation: seed
// determinism, the structural MTSD readout, typed refusals, and the
// time-varying acceptance path. Agreement with the other backends lives
// in conformance_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "btmf/fluid/demand.h"
#include "btmf/fluid/schemes.h"
#include "btmf/model/backend.h"

namespace btmf::model {
namespace {

const Backend& epidemic() { return require_backend("stochastic-epidemic"); }

/// A CI-sized scenario: small K and a short horizon keep a Gillespie
/// path to a few thousand events per replication.
ScenarioSpec small_spec(fluid::SchemeKind scheme) {
  ScenarioSpec spec;
  spec.num_files = 3;
  spec.correlation = 0.7;
  spec.scheme = scheme;
  spec.horizon = 2000.0;
  spec.warmup = 500.0;
  spec.epidemic_replications = 4;
  spec.seed = 1234;
  return spec;
}

TEST(EpidemicBackendTest, IsRegisteredAsMonteCarlo) {
  EXPECT_EQ(epidemic().name(), "stochastic-epidemic");
  EXPECT_TRUE(epidemic().capabilities().monte_carlo);
  EXPECT_TRUE(epidemic().capabilities().arrivals_time_varying);
  EXPECT_FALSE(epidemic().capabilities().bandwidth_classes);
}

TEST(EpidemicBackendTest, DeterministicPerSeed) {
  const ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd);
  const Outcome first = epidemic().evaluate(spec);
  const Outcome second = epidemic().evaluate(spec);
  ASSERT_TRUE(first.ok()) << first.error;
  // Bitwise: replication seeds derive from spec.seed, nothing else.
  EXPECT_EQ(first.avg_download_per_file, second.avg_download_per_file);
  EXPECT_EQ(first.avg_online_per_file, second.avg_online_per_file);
  EXPECT_EQ(first.per_class.download_time, second.per_class.download_time);
  EXPECT_EQ(first.per_class.online_time, second.per_class.online_time);
}

TEST(EpidemicBackendTest, SeedChangesThePath) {
  ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd);
  const Outcome first = epidemic().evaluate(spec);
  spec.seed += 1;
  const Outcome second = epidemic().evaluate(spec);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(first.avg_download_per_file, second.avg_download_per_file);
}

TEST(EpidemicBackendTest, MtsdReadoutScalesPerClass) {
  // MTSD simulates one representative torrent; class i downloads i files
  // sequentially, so its times are exact multiples of class 1's.
  const Outcome outcome =
      epidemic().evaluate(small_spec(fluid::SchemeKind::kMtsd));
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  ASSERT_EQ(outcome.per_class.num_classes(), 3u);
  const double t1 = outcome.per_class.download_time[0];
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(outcome.per_class.download_time[1], 2.0 * t1);
  EXPECT_DOUBLE_EQ(outcome.per_class.download_time[2], 3.0 * t1);
}

TEST(EpidemicBackendTest, RefusesCmfsdAndBandwidthClasses) {
  const Outcome cmfsd =
      epidemic().evaluate(small_spec(fluid::SchemeKind::kCmfsd));
  EXPECT_EQ(cmfsd.status, OutcomeStatus::kUnsupported);
  EXPECT_NE(cmfsd.error.find("CMFSD"), std::string::npos);

  ScenarioSpec classy = small_spec(fluid::SchemeKind::kMtcd);
  classy.bandwidth_classes = fluid::parse_classes("1,0.5,0|1,1.5,0");
  const Outcome refused = epidemic().evaluate(classy);
  EXPECT_EQ(refused.status, OutcomeStatus::kUnsupported);
  EXPECT_NE(refused.error.find("bandwidth"), std::string::npos);
}

TEST(EpidemicBackendTest, AcceptsTimeVaryingArrivals) {
  ScenarioSpec spec = small_spec(fluid::SchemeKind::kMtcd);
  spec.arrival = fluid::parse_arrival("diurnal,0.5,400,0");
  const Outcome outcome = epidemic().evaluate(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_GT(outcome.avg_download_per_file, 0.0);
  EXPECT_TRUE(std::isfinite(outcome.avg_download_per_file));
}

}  // namespace
}  // namespace btmf::model
