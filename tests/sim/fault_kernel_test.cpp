// Event-kernel edge cases, driven through purpose-built test policies:
// the exact completion-vs-abort tie and the generation counters that
// invalidate stale heap entries after a forced group move. Both run with
// the paranoid auditor on, so any bookkeeping the scenarios corrupt
// throws btmf::AuditError at the offending event.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "btmf/sim/event_kernel.h"
#include "btmf/sim/rng.h"

namespace btmf::sim {
namespace {

SimConfig one_file_config() {
  SimConfig c;
  c.num_files = 1;
  c.correlation = 1.0;  // every visitor requests the file: no empty sets,
                        // so the shadow RNG replay below stays in sync
  c.visit_rate = 1.0;
  c.horizon = 60.0;
  c.warmup = 0.0;
  c.seed = 99;
  c.paranoid = true;
  return c;
}

/// Engineers an exact tie between every download's completion and its own
/// abort clock. The policy replays the kernel's RNG stream on a shadow
/// copy to predict the Exp(theta) deadline arm_abort is about to draw,
/// then sizes the download (in a fresh rate-1 group) so the completion
/// candidate is the bit-identical instant t + d. The kernel drains
/// completions before aborts at a shared dispatch time, so every download
/// must finish and no abort may fire.
class ExactTiePolicy : public SchemePolicy {
 public:
  explicit ExactTiePolicy(const SimConfig& cfg)
      : shadow_(cfg.seed),
        num_files_(cfg.num_files),
        visit_rate_(cfg.visit_rate),
        abort_rate_(cfg.abort_rate) {}

  void on_arrival(std::size_t ui, double t) override {
    // Mirror the draws the kernel made since the previous admission: one
    // next-arrival exponential and one set-membership coin per file.
    shadow_.exponential(visit_rate_);
    for (unsigned f = 0; f < num_files_; ++f) shadow_.bernoulli(1.0);
    const double d = shadow_.exponential(abort_rate_);  // arm_abort's draw

    const std::size_t gid = kernel_->new_group(t);
    kernel_->set_group_rate(gid, 1.0, t);
    kernel_->begin_service(ui, 0, gid, d, t);
    kernel_->arm_abort(ui, 0, t);
    kernel_->add_active_peers(1);
    kernel_->down_pop()[0] += 1.0;
    if (deadline_.size() <= ui) deadline_.resize(ui + 1, 0.0);
    deadline_[ui] = t + d;
    ++admitted_;
  }

  void refresh_rates(double) override {}

  void on_complete(std::size_t ui, unsigned slot, double t) override {
    ++completions_;
    // The tie really happened: the completion fired at the bit-identical
    // time the abort clock holds. A failed prediction would land here at
    // a different time (or in on_abort).
    EXPECT_EQ(t, deadline_[ui]);
    SimUser u = kernel_->user(ui);
    u.state[slot] = SlotState::kIdle;
    kernel_->down_pop()[0] -= 1.0;
    kernel_->remove_active_peers(1);
    kernel_->retire_user(ui, t, t - u.arrival, 0.0, false);
  }

  void on_abort(std::size_t, unsigned, double) override { ++aborts_; }
  void on_seed_departure(std::size_t, unsigned, double) override {
    ADD_FAILURE() << "this policy never seeds";
  }
  [[nodiscard]] double little_divisor(double files) const override {
    return files;
  }

  [[nodiscard]] std::size_t admitted() const { return admitted_; }
  [[nodiscard]] std::size_t completions() const { return completions_; }
  [[nodiscard]] std::size_t aborts() const { return aborts_; }

 private:
  RandomStream shadow_;
  unsigned num_files_;
  double visit_rate_;
  double abort_rate_;
  std::vector<double> deadline_;
  std::size_t admitted_ = 0;
  std::size_t completions_ = 0;
  std::size_t aborts_ = 0;
};

TEST(FaultKernelTest, CompletionWinsExactTieWithAbortClock) {
  SimConfig c = one_file_config();
  c.abort_rate = 0.4;
  ExactTiePolicy policy(c);
  EventKernel kernel(c, policy);
  const SimResult r = kernel.run();
  EXPECT_GT(policy.admitted(), 10u);
  // Users still in flight at the horizon are censored, not completed.
  EXPECT_EQ(policy.completions() + r.censored_users, policy.admitted());
  EXPECT_EQ(policy.aborts(), 0u);
  EXPECT_EQ(r.aborted_users, 0u);
  EXPECT_EQ(r.total_users, policy.completions());
}

/// Forces a mid-flight regroup on every other admission: downloads start
/// in a shared slow group (rate 1), and the moved ones leave a stale heap
/// entry behind (not necessarily at the top, so it lingers) while the
/// download continues in a private fast group (rate 2). Generation
/// counters must invalidate the stale entries: each download completes
/// exactly once, at the speed of the group it actually sits in.
class RegroupPolicy : public SchemePolicy {
 public:
  void on_arrival(std::size_t ui, double t) override {
    if (slow_ == kNone) {
      slow_ = kernel_->new_group(t);
      kernel_->set_group_rate(slow_, 1.0, t);
    }
    // Staggered targets keep several entries pending in the slow heap.
    const double work = 5.0 + 3.0 * static_cast<double>(admitted_ % 4);
    kernel_->begin_service(ui, 0, slow_, work, t);
    double expect_at = t + work;
    if (admitted_ % 2 == 1) {
      const double left = kernel_->remaining_work(ui, 0, t);
      const std::size_t fast = kernel_->new_group(t);
      kernel_->set_group_rate(fast, 2.0, t);
      kernel_->move_service(ui, 0, fast, left, t);
      expect_at = t + left / 2.0;
    }
    kernel_->add_active_peers(1);
    kernel_->down_pop()[0] += 1.0;
    if (expected_.size() <= ui) expected_.resize(ui + 1, 0.0);
    expected_[ui] = expect_at;
    ++admitted_;
  }

  void refresh_rates(double) override {}

  void on_complete(std::size_t ui, unsigned slot, double t) override {
    ++completions_;
    // Completing off the stale slow-group entry instead of the fast one
    // would land a moved download at roughly twice this time.
    EXPECT_NEAR(t, expected_[ui], 1e-6);
    SimUser u = kernel_->user(ui);
    u.state[slot] = SlotState::kIdle;
    kernel_->down_pop()[0] -= 1.0;
    kernel_->remove_active_peers(1);
    kernel_->retire_user(ui, t, t - u.arrival, 0.0, false);
  }

  void on_abort(std::size_t, unsigned, double) override {
    ADD_FAILURE() << "abort_rate is 0 in this test";
  }
  void on_seed_departure(std::size_t, unsigned, double) override {
    ADD_FAILURE() << "this policy never seeds";
  }
  [[nodiscard]] double little_divisor(double files) const override {
    return files;
  }

  [[nodiscard]] std::size_t admitted() const { return admitted_; }
  [[nodiscard]] std::size_t completions() const { return completions_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t slow_ = kNone;
  std::vector<double> expected_;
  std::size_t admitted_ = 0;
  std::size_t completions_ = 0;
};

TEST(FaultKernelTest, StaleEntriesAfterForcedMoveAreInvalidated) {
  const SimConfig c = one_file_config();  // paranoid audit every round
  RegroupPolicy policy;
  EventKernel kernel(c, policy);
  const SimResult r = kernel.run();
  EXPECT_GT(policy.admitted(), 10u);
  EXPECT_EQ(policy.completions() + r.censored_users, policy.admitted());
  EXPECT_EQ(r.total_users, policy.completions());
}

}  // namespace
}  // namespace btmf::sim
