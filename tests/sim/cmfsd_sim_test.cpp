#include "btmf/sim/cmfsd_sim.h"

#include <gtest/gtest.h>

#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

SimConfig small_config(double p, double rho) {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kCmfsd;
  c.num_files = 5;
  c.correlation = p;
  c.rho = rho;
  c.visit_rate = 1.0;
  c.horizon = 2500.0;
  c.warmup = 600.0;
  c.seed = 7;
  return c;
}

TEST(CmfsdSimTest, DeterministicForFixedSeed) {
  const SimConfig c = small_config(0.8, 0.2);
  const SimResult a = run_cmfsd_sim(c);
  const SimResult b = run_cmfsd_sim(c);
  EXPECT_DOUBLE_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(CmfsdSimTest, RhoZeroBeatsRhoOne) {
  const SimResult generous = run_cmfsd_sim(small_config(0.9, 0.0));
  const SimResult selfish = run_cmfsd_sim(small_config(0.9, 1.0));
  ASSERT_GT(generous.total_users, 300u);
  ASSERT_GT(selfish.total_users, 300u);
  EXPECT_LT(generous.avg_online_per_file,
            0.8 * selfish.avg_online_per_file);
}

TEST(CmfsdSimTest, WrongSchemeRejected) {
  SimConfig c = small_config(0.5, 0.0);
  c.scheme = fluid::SchemeKind::kMtsd;
  EXPECT_THROW((void)run_cmfsd_sim(c), ConfigError);
}

TEST(CmfsdSimTest, ClassOneBenefitsFromOthersDonations) {
  // Single-file peers never donate, but they do draw from the shared
  // virtual-seed pool, so their download time beats the 60-unit
  // single-torrent baseline whenever multi-file peers are generous.
  SimConfig c = small_config(0.15, 0.0);
  const SimResult r = run_cmfsd_sim(c);
  ASSERT_GT(r.classes[0].completed_users, 200u);
  EXPECT_LT(r.classes[0].mean_download_per_file, 60.0);
  EXPECT_GT(r.classes[0].mean_download_per_file, 20.0);
}

TEST(CmfsdSimTest, CheatersShiftLoadOntoObedientPeers) {
  SimConfig honest = small_config(0.9, 0.0);
  honest.horizon = 3000.0;
  SimConfig cheaty = honest;
  cheaty.cheater_fraction = 0.8;
  const SimResult a = run_cmfsd_sim(honest);
  const SimResult b = run_cmfsd_sim(cheaty);
  // With most multi-file peers refusing to virtual-seed, the average
  // online time per file degrades toward the rho = 1 level.
  EXPECT_GT(b.avg_online_per_file, 1.15 * a.avg_online_per_file);
}

TEST(CmfsdSimTest, DemandBlindLocalPoolCongests) {
  // A stricter reading of the protocol — each virtual seed feeds one
  // randomly chosen completed subtorrent — is demand-insensitive: with
  // rho = 0 a stage >= 2 downloader has no tit-for-tat restoring force,
  // per-subtorrent backlogs random-walk, and the system congests. The
  // censoring-free Little's-law view exposes it (the naive sample mean
  // would be survivorship-biased toward fast finishers). This is why the
  // fluid model's global-pool assumption is load-bearing.
  SimConfig global = small_config(0.9, 0.0);
  SimConfig local = global;
  local.seed_pool = SeedPoolMode::kSubtorrentLocal;
  const SimResult g = run_cmfsd_sim(global);
  const SimResult l = run_cmfsd_sim(local);
  const auto& gc = g.classes[4];
  const auto& lc = l.classes[4];
  ASSERT_GT(gc.arrival_rate, 0.0);
  ASSERT_GT(lc.arrival_rate, 0.0);
  EXPECT_GT(lc.little_online_time, 2.0 * gc.little_online_time);
  EXPECT_GT(l.censored_users, g.censored_users);
}

TEST(CmfsdSimTest, DemandAwareLocalPoolRecoversAtModerateRho) {
  // At rho = 0 even demand-aware targeting cannot save the literal
  // protocol: a donor can never serve the subtorrent it is itself stuck
  // in (it has no complete copy), so the starved subtorrent becomes an
  // absorbing convoy. A moderate rho keeps the intra-subtorrent TFT
  // restoring force alive, and demand-aware steering then recovers the
  // global-pool (fluid-model) performance almost exactly.
  SimConfig global = small_config(0.9, 0.2);
  SimConfig aware = global;
  aware.seed_pool = SeedPoolMode::kSubtorrentDemandAware;
  const SimResult g = run_cmfsd_sim(global);
  const SimResult a = run_cmfsd_sim(aware);
  const auto& gc = g.classes[4];
  const auto& ac = a.classes[4];
  EXPECT_LT(ac.little_online_time, 1.15 * gc.little_online_time);

  // ... whereas the random-target variant at rho = 0 has collapsed (see
  // DemandBlindLocalPoolCongests above); at rho = 0.2 it is merely worse.
  SimConfig random_target = global;
  random_target.seed_pool = SeedPoolMode::kSubtorrentLocal;
  const SimResult r = run_cmfsd_sim(random_target);
  EXPECT_GT(r.classes[4].little_online_time, ac.little_online_time);
}

TEST(CmfsdSimTest, SampleAndLittleViewsAgree) {
  SimConfig c = small_config(1.0, 0.0);
  c.horizon = 3000.0;
  const SimResult r = run_cmfsd_sim(c);
  const auto& cls = r.classes[4];  // class K at p = 1
  ASSERT_GT(cls.completed_users, 200u);
  EXPECT_NEAR(cls.little_online_time, cls.mean_online_per_file,
              0.12 * cls.mean_online_per_file);
}

TEST(CmfsdSimTest, RunawayGuardThrows) {
  SimConfig c = small_config(0.9, 0.0);
  c.max_active_peers = 5;
  EXPECT_THROW((void)run_cmfsd_sim(c), SolverError);
}

TEST(CmfsdSimTest, NoRhoTrajectoryWithoutAdapt) {
  const SimResult r = run_cmfsd_sim(small_config(0.9, 0.0));
  EXPECT_TRUE(r.rho_trajectory_time.empty());
}

TEST(CmfsdSimTest, DownloadTimeScalesWithFileSize) {
  SimConfig small = small_config(0.9, 0.0);
  SimConfig large = small;
  large.file_size = 2.0;
  large.horizon = 5000.0;
  large.warmup = 1500.0;
  const SimResult a = run_cmfsd_sim(small);
  const SimResult b = run_cmfsd_sim(large);
  // Twice the bytes at the same service rates ~ twice the download time.
  EXPECT_NEAR(b.avg_download_per_file / a.avg_download_per_file, 2.0, 0.35);
}

}  // namespace
}  // namespace btmf::sim
