// Abort-rate and download-bandwidth-cap behaviour of both engines, cross
// validated against the extended Qiu–Srikant closed forms (K = 1 makes
// every scheme a plain single torrent).
#include <gtest/gtest.h>

#include "btmf/fluid/extended.h"
#include "btmf/sim/cmfsd_sim.h"
#include "btmf/sim/multi_torrent_sim.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

SimConfig single_torrent_config(fluid::SchemeKind scheme) {
  SimConfig c;
  c.scheme = scheme;
  c.num_files = 1;
  c.correlation = 1.0;  // everyone requests the one file
  c.visit_rate = 1.0;
  c.horizon = 4000.0;
  c.warmup = 1000.0;
  c.seed = 5;
  return c;
}

TEST(AbortTest, NoAbortMeansNoAbortedUsers) {
  const SimResult r =
      run_simulation(single_torrent_config(fluid::SchemeKind::kMtsd));
  EXPECT_EQ(r.aborted_users, 0u);
}

TEST(AbortTest, MtsdAbortMatchesAbortAwareFluid) {
  SimConfig c = single_torrent_config(fluid::SchemeKind::kMtsd);
  c.abort_rate = 1.0 / 120.0;
  const SimResult r = run_simulation(c);

  fluid::ExtendedParams params;
  params.abort_rate = c.abort_rate;
  const fluid::ExtendedEquilibrium aware =
      fluid::abort_aware_single_torrent_equilibrium(params, c.visit_rate);
  const fluid::ExtendedEquilibrium transferable =
      fluid::extended_single_torrent_equilibrium(params, c.visit_rate);

  // The swarm matches the wasted-work (abort-aware) fixed point, not the
  // optimistic Qiu-Srikant theta-extension that books the partial
  // progress of aborting peers as completions.
  EXPECT_NEAR(r.classes[0].avg_downloaders, aware.downloaders,
              0.06 * aware.downloaders);
  EXPECT_NEAR(r.classes[0].mean_download_per_file, aware.download_time,
              0.05 * aware.download_time);
  const double total = static_cast<double>(r.total_users + r.aborted_users);
  ASSERT_GT(total, 300.0);
  EXPECT_NEAR(static_cast<double>(r.total_users) / total,
              aware.completion_fraction, 0.05);
  // ... and sits strictly on the slow side of the transferable model.
  EXPECT_GT(r.classes[0].avg_downloaders, 1.15 * transferable.downloaders);
}

TEST(AbortTest, CmfsdAbortMatchesAbortAwareFluid) {
  SimConfig c = single_torrent_config(fluid::SchemeKind::kCmfsd);
  c.abort_rate = 1.0 / 120.0;
  const SimResult r = run_simulation(c);
  fluid::ExtendedParams params;
  params.abort_rate = c.abort_rate;
  const fluid::ExtendedEquilibrium aware =
      fluid::abort_aware_single_torrent_equilibrium(params, c.visit_rate);
  EXPECT_NEAR(r.classes[0].avg_downloaders, aware.downloaders,
              0.06 * aware.downloaders);
  const double total = static_cast<double>(r.total_users + r.aborted_users);
  EXPECT_NEAR(static_cast<double>(r.total_users) / total,
              aware.completion_fraction, 0.05);
}

TEST(AbortTest, MtcdAbortsOnlyTheOneVirtualPeer) {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kMtcd;
  c.num_files = 4;
  c.correlation = 0.9;
  c.visit_rate = 1.0;
  c.horizon = 2500.0;
  c.warmup = 600.0;
  // A user is "aborted" as soon as ANY of its ~4 concurrent virtual
  // peers gives up, and each peer races its ~350-unit download against
  // the patience clock, so per-user abort odds compound: with mean
  // patience 5000 about 1 - e^{-4*350/5000} ~ 25% of users still lose a
  // peer. Completers must simply dominate.
  c.abort_rate = 1.0 / 5000.0;
  const SimResult r = run_simulation(c);
  EXPECT_GT(r.aborted_users, 0u);
  EXPECT_GT(r.total_users, r.aborted_users);
}

TEST(AbortTest, MfcdAbortRemovesTheWholeUser) {
  // MFCD downloads random chunks across all files, so no file is
  // individually complete at abort time: the whole visit is abandoned.
  SimConfig c;
  c.scheme = fluid::SchemeKind::kMfcd;
  c.num_files = 4;
  c.correlation = 0.9;
  c.visit_rate = 1.0;
  c.horizon = 2500.0;
  c.warmup = 600.0;
  c.abort_rate = 1.0 / 800.0;
  const SimResult r = run_simulation(c);
  EXPECT_GT(r.aborted_users, 0u);
  EXPECT_GT(r.total_users, 0u);
  // Determinism still holds with the extra abort clocks.
  const SimResult again = run_simulation(c);
  EXPECT_EQ(r.aborted_users, again.aborted_users);
  EXPECT_DOUBLE_EQ(r.avg_online_per_file, again.avg_online_per_file);
}

TEST(AbortTest, AbortsReducePopulationVsNoAborts) {
  SimConfig base = single_torrent_config(fluid::SchemeKind::kMtsd);
  SimConfig impatient = base;
  impatient.abort_rate = 1.0 / 60.0;  // heavy impatience
  const SimResult a = run_simulation(base);
  const SimResult b = run_simulation(impatient);
  EXPECT_LT(b.classes[0].avg_downloaders, a.classes[0].avg_downloaders);
}

TEST(BandwidthCapTest, LooseCapChangesNothing) {
  SimConfig base = single_torrent_config(fluid::SchemeKind::kMtsd);
  SimConfig capped = base;
  capped.download_bw = 1.0;  // far above any achievable rate
  const SimResult a = run_simulation(base);
  const SimResult b = run_simulation(capped);
  EXPECT_DOUBLE_EQ(a.avg_online_per_file, b.avg_online_per_file);
}

TEST(BandwidthCapTest, TightCapProducesDownloadConstrainedRegime) {
  SimConfig c = single_torrent_config(fluid::SchemeKind::kMtsd);
  c.download_bw = 0.01;  // < c* = 1/60
  const SimResult r = run_simulation(c);
  fluid::ExtendedParams params;
  params.download_bw = c.download_bw;
  const fluid::ExtendedEquilibrium eq =
      fluid::extended_single_torrent_equilibrium(params, c.visit_rate);
  ASSERT_TRUE(eq.download_constrained);
  // T = 1/c = 100 per file.
  EXPECT_NEAR(r.classes[0].mean_download_per_file, eq.download_time,
              0.05 * eq.download_time);
  EXPECT_NEAR(r.classes[0].avg_downloaders, eq.downloaders,
              0.10 * eq.downloaders);
}

TEST(BandwidthCapTest, CmfsdCapAppliesPerUser) {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kCmfsd;
  c.num_files = 5;
  c.correlation = 0.9;
  c.rho = 0.0;
  c.visit_rate = 1.0;
  c.horizon = 2500.0;
  c.warmup = 600.0;
  c.download_bw = 0.015;
  const SimResult r = run_simulation(c);
  // Per-file download time can never beat 1/c.
  for (unsigned k = 0; k < 5; ++k) {
    if (r.classes[k].completed_users < 30) continue;
    EXPECT_GE(r.classes[k].mean_download_per_file,
              1.0 / c.download_bw - 1.0);
  }
}

TEST(BandwidthCapTest, InvalidValuesRejected) {
  SimConfig c = single_torrent_config(fluid::SchemeKind::kMtsd);
  c.download_bw = 0.0;
  EXPECT_THROW((void)run_simulation(c), ConfigError);
  c = single_torrent_config(fluid::SchemeKind::kMtsd);
  c.abort_rate = -1.0;
  EXPECT_THROW((void)run_simulation(c), ConfigError);
}

}  // namespace
}  // namespace btmf::sim
