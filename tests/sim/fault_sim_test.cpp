// Fault-injection layer: plan parsing/validation, determinism of faulted
// runs, the bit-identity guarantee for inert plans, the recovery
// observability counters and replication isolation.
//
// The paranoid auditor runs in most of these tests (cfg.paranoid = true):
// a fault path that corrupts a service-group integral, leaks a heap entry
// or miscounts a policy pool throws btmf::AuditError at the offending
// event and fails the test with the diagnosis.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "btmf/parallel/thread_pool.h"
#include "btmf/sim/faults.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

SimConfig base_config(fluid::SchemeKind scheme) {
  SimConfig c;
  c.scheme = scheme;
  c.num_files = 4;
  c.correlation = 0.5;
  c.visit_rate = 2.0;
  c.horizon = 600.0;
  c.warmup = 150.0;
  c.seed = 77;
  if (scheme == fluid::SchemeKind::kCmfsd) c.rho = 0.3;
  return c;
}

/// A plan touching every fault kind, all inside the base horizon.
FaultPlan rich_plan() {
  FaultPlan plan;
  plan.tracker_outages.push_back({100.0, 50.0, false, 1.0});
  plan.seed_failures.push_back({200.0, 60.0});
  plan.churn_bursts.push_back({300.0, 0.5, 1.0, 0.5});
  plan.bandwidth_faults.push_back({400.0, 50.0, 0.5});
  return plan;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t k = 0; k < a.classes.size(); ++k) {
    const PerClassResult& x = a.classes[k];
    const PerClassResult& y = b.classes[k];
    EXPECT_EQ(x.completed_users, y.completed_users) << "class " << k + 1;
    EXPECT_EQ(x.mean_online_per_file, y.mean_online_per_file);
    EXPECT_EQ(x.mean_download_per_file, y.mean_download_per_file);
    EXPECT_EQ(x.avg_downloaders, y.avg_downloaders);
    EXPECT_EQ(x.avg_seeds, y.avg_seeds);
    EXPECT_EQ(x.little_online_time, y.little_online_time);
  }
  EXPECT_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.avg_download_per_file, b.avg_download_per_file);
  EXPECT_EQ(a.total_users, b.total_users);
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.censored_users, b.censored_users);
  EXPECT_EQ(a.aborted_users, b.aborted_users);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rate_epochs, b.rate_epochs);
  EXPECT_EQ(a.peak_live_peers, b.peak_live_peers);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.downloads_killed, b.downloads_killed);
  EXPECT_EQ(a.readmissions, b.readmissions);
  EXPECT_EQ(a.time_to_recover, b.time_to_recover);
}

class FaultSchemeTest : public ::testing::TestWithParam<fluid::SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(AllSchemes, FaultSchemeTest,
                         ::testing::Values(fluid::SchemeKind::kMtcd,
                                           fluid::SchemeKind::kMtsd,
                                           fluid::SchemeKind::kMfcd,
                                           fluid::SchemeKind::kCmfsd),
                         [](const auto& tpi) {
                           switch (tpi.param) {
                             case fluid::SchemeKind::kMtcd: return "Mtcd";
                             case fluid::SchemeKind::kMtsd: return "Mtsd";
                             case fluid::SchemeKind::kMfcd: return "Mfcd";
                             default: return "Cmfsd";
                           }
                         });

// The bit-identity guarantee: a plan whose faults all live beyond the
// horizon never fires, and its mere presence (the compiled timeline, the
// gating branches on every arrival and seed residence) must not perturb a
// single event or RNG draw relative to the default no-fault run.
TEST_P(FaultSchemeTest, InertPlanIsBitIdenticalToNoFaultRun) {
  const SimConfig clean = base_config(GetParam());
  SimConfig faulted = clean;
  const double h = clean.horizon;
  faulted.faults.tracker_outages.push_back({2.0 * h, 100.0, false, 1.0});
  faulted.faults.seed_failures.push_back({3.0 * h, 100.0});
  faulted.faults.churn_bursts.push_back({2.5 * h, 1.0, 1.0, 1.0});
  faulted.faults.bandwidth_faults.push_back({4.0 * h, 100.0, 0.5});
  expect_identical(run_simulation(clean), run_simulation(faulted));
}

// Faulted runs are as deterministic as clean ones (all fault randomness
// comes from the replication's stream), and the paranoid auditor holds
// across every scheme while every fault kind fires.
TEST_P(FaultSchemeTest, FaultedRunDeterministicUnderParanoidAudit) {
  SimConfig c = base_config(GetParam());
  c.faults = rich_plan();
  c.paranoid = true;
  const SimResult a = run_simulation(c);
  const SimResult b = run_simulation(c);
  expect_identical(a, b);
  // 2 edges per window fault + 1 churn instant.
  EXPECT_EQ(a.faults_injected, 7u);
  EXPECT_GT(a.total_users, 0u);
}

TEST(FaultSimTest, ChurnBurstKillsAndReadmitsPeers) {
  SimConfig c = base_config(fluid::SchemeKind::kMtcd);
  c.paranoid = true;
  c.faults.churn_bursts.push_back({300.0, 1.0, 1.0, 1.0});
  const SimResult r = run_simulation(c);
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_GT(r.downloads_killed, 0u);
  EXPECT_GT(r.readmissions, 0u);
  EXPECT_GE(r.readmission_queue_peak, 1u);
  // The burst dented the population, so a recovery episode either closed
  // (positive time) or was still open at the horizon.
  EXPECT_TRUE(r.time_to_recover > 0.0 || r.faults_unrecovered > 0u);
}

TEST(FaultSimTest, TrackerOutageDropLosesVisitorsForever) {
  SimConfig c = base_config(fluid::SchemeKind::kMtsd);
  c.paranoid = true;
  c.faults.tracker_outages.push_back({200.0, 100.0, true, 1.0});
  const SimResult r = run_simulation(c);
  EXPECT_GT(r.arrivals_dropped, 0u);
  EXPECT_EQ(r.arrivals_queued, 0u);
  EXPECT_EQ(r.readmissions, 0u);
}

TEST(FaultSimTest, TrackerOutageQueueReadmitsVisitors) {
  SimConfig c = base_config(fluid::SchemeKind::kMtsd);
  c.paranoid = true;
  c.faults.tracker_outages.push_back({200.0, 100.0, false, 2.0});
  const SimResult r = run_simulation(c);
  EXPECT_EQ(r.arrivals_dropped, 0u);
  EXPECT_GT(r.arrivals_queued, 0u);
  EXPECT_GT(r.readmissions, 0u);
  EXPECT_LE(r.readmissions, r.arrivals_queued);
  EXPECT_GE(r.readmission_queue_peak, 1u);
}

TEST(FaultSimTest, SeedFailureWindowRunsCleanly) {
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMfcd,
        fluid::SchemeKind::kCmfsd}) {
    SimConfig c = base_config(scheme);
    c.paranoid = true;
    c.faults.seed_failures.push_back({200.0, 150.0});
    const SimResult r = run_simulation(c);
    EXPECT_EQ(r.faults_injected, 2u);  // down edge + recovery edge
    EXPECT_GT(r.total_users, 0u);
  }
}

TEST(FaultSimTest, BandwidthWindowSlowsThenRestores) {
  SimConfig clean = base_config(fluid::SchemeKind::kMtcd);
  SimConfig degraded = clean;
  degraded.paranoid = true;
  degraded.faults.bandwidth_faults.push_back({150.0, 300.0, 0.25});
  const SimResult a = run_simulation(clean);
  const SimResult b = run_simulation(degraded);
  // Downloads crossing the window take longer on average.
  EXPECT_GT(b.avg_download_per_file, a.avg_download_per_file);
  EXPECT_EQ(b.faults_injected, 2u);
}

// ---- plan parsing and validation ------------------------------------------

TEST(FaultPlanTest, ParserRoundTripsEveryClause) {
  const FaultPlan plan = parse_fault_plan(
      "tracker:500:200; seed:2000:400; churn:1200:0.5:0.8:0.2; "
      "bw:100:50:0.5; tracker:900:30:drop; tracker:1500:10:queue:2.5");
  ASSERT_EQ(plan.tracker_outages.size(), 3u);
  EXPECT_EQ(plan.tracker_outages[0].start, 500.0);
  EXPECT_EQ(plan.tracker_outages[0].duration, 200.0);
  EXPECT_FALSE(plan.tracker_outages[0].drop);
  EXPECT_TRUE(plan.tracker_outages[1].drop);
  EXPECT_FALSE(plan.tracker_outages[2].drop);
  EXPECT_EQ(plan.tracker_outages[2].readmit_rate, 2.5);
  ASSERT_EQ(plan.seed_failures.size(), 1u);
  EXPECT_EQ(plan.seed_failures[0].start, 2000.0);
  ASSERT_EQ(plan.churn_bursts.size(), 1u);
  EXPECT_EQ(plan.churn_bursts[0].time, 1200.0);
  EXPECT_EQ(plan.churn_bursts[0].kill_fraction, 0.5);
  EXPECT_EQ(plan.churn_bursts[0].progress_loss, 0.8);
  EXPECT_EQ(plan.churn_bursts[0].backoff_rate, 0.2);
  ASSERT_EQ(plan.bandwidth_faults.size(), 1u);
  EXPECT_EQ(plan.bandwidth_faults[0].scale, 0.5);
  EXPECT_EQ(plan.size(), 6u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, ParserRejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("quake:1:2"), ConfigError);
  EXPECT_THROW(parse_fault_plan("tracker:500"), ConfigError);
  EXPECT_THROW(parse_fault_plan("tracker:500:abc"), ConfigError);
  EXPECT_THROW(parse_fault_plan("tracker:500:10:sometimes"), ConfigError);
  EXPECT_THROW(parse_fault_plan("bw:0:10"), ConfigError);
  EXPECT_THROW(parse_fault_plan("churn:10:1.5"), ConfigError);
}

TEST(FaultPlanTest, ValidateRejectsBadRangesAndOverlaps) {
  FaultPlan plan;
  plan.bandwidth_faults.push_back({0.0, 10.0, 1.5});
  EXPECT_THROW(plan.validate(), ConfigError);

  plan = FaultPlan{};
  plan.tracker_outages.push_back({100.0, 50.0, false, 1.0});
  plan.tracker_outages.push_back({120.0, 50.0, false, 1.0});  // overlaps
  EXPECT_THROW(plan.validate(), ConfigError);

  plan = FaultPlan{};
  plan.seed_failures.push_back({100.0, 0.0});  // empty window
  EXPECT_THROW(plan.validate(), ConfigError);

  plan = FaultPlan{};
  plan.churn_bursts.push_back({100.0, 0.5, 0.5, 0.0});  // no backoff rate
  EXPECT_THROW(plan.validate(), ConfigError);

  // Back-to-back windows (end == next start) are fine.
  plan = FaultPlan{};
  plan.tracker_outages.push_back({100.0, 50.0, false, 1.0});
  plan.tracker_outages.push_back({150.0, 50.0, false, 1.0});
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(FaultPlan{}.empty());
}

// ---- replication isolation ------------------------------------------------

// One replication blowing past max_active_peers (a SolverError mid-run)
// must surface in `failures` without discarding its siblings' results.
TEST(FaultSimTest, ReplicationFailuresAreIsolated) {
  SimConfig c = base_config(fluid::SchemeKind::kMtcd);
  parallel::ThreadPool pool(2);
  const std::size_t reps = 6;

  // Find a peer-cap threshold that separates the derived seeds: run the
  // replications unconstrained, then cap between the smallest and largest
  // observed peaks so some seeds trip the cap and some survive.
  const ReplicationSummary clean = run_replications(c, reps, pool);
  ASSERT_EQ(clean.runs.size(), reps);
  ASSERT_TRUE(clean.failures.empty());
  std::size_t lo = std::numeric_limits<std::size_t>::max();
  std::size_t hi = 0;
  for (const SimResult& r : clean.runs) {
    lo = std::min(lo, r.peak_live_peers);
    hi = std::max(hi, r.peak_live_peers);
  }
  ASSERT_LT(lo, hi) << "seeds produced identical peaks; widen the scenario";

  SimConfig capped = c;
  capped.max_active_peers = (lo + hi) / 2;
  const ReplicationSummary mixed = run_replications(capped, reps, pool);
  EXPECT_FALSE(mixed.failures.empty());
  EXPECT_FALSE(mixed.runs.empty());
  EXPECT_EQ(mixed.failures.size() + mixed.runs.size(), reps);
  for (const ReplicationFailure& f : mixed.failures) {
    EXPECT_LT(f.index, reps);
    EXPECT_FALSE(f.message.empty());
  }
  // Survivor aggregates are real numbers, not poisoned by the failures.
  EXPECT_GT(mixed.mean_online_per_file, 0.0);

  // Every replication failing surfaces as a SolverError naming the first.
  SimConfig hopeless = c;
  hopeless.max_active_peers = 1;
  EXPECT_THROW(run_replications(hopeless, 3, pool), SolverError);
}

}  // namespace
}  // namespace btmf::sim
