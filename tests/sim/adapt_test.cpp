// Tests of the Adapt mechanism (paper Sec. 4.3 — proposed there, evaluated
// here; its systematic evaluation is the paper's stated future work).
#include <gtest/gtest.h>

#include "btmf/sim/cmfsd_sim.h"
#include "btmf/sim/simulator.h"

namespace btmf::sim {
namespace {

SimConfig adapt_config(double p, double cheater_fraction) {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kCmfsd;
  c.num_files = 5;
  c.correlation = p;
  c.visit_rate = 1.0;
  c.cheater_fraction = cheater_fraction;
  c.adapt.enabled = true;
  c.adapt.initial_rho = 0.0;
  c.adapt.period = 20.0;
  c.horizon = 3000.0;
  c.warmup = 800.0;
  c.seed = 11;
  return c;
}

TEST(AdaptTest, TrajectoryIsRecorded) {
  const SimResult r = run_cmfsd_sim(adapt_config(0.9, 0.0));
  ASSERT_FALSE(r.rho_trajectory_time.empty());
  // Samples are taken at the Adapt tick cadence after warm-up.
  EXPECT_GE(r.rho_trajectory_time.front(), 800.0);
  for (const double rho : r.rho_trajectory_mean) {
    EXPECT_GE(rho, 0.0);
    EXPECT_LE(rho, 1.0);
  }
}

TEST(AdaptTest, ObedientHighCorrelationSystemStaysGenerous) {
  // With everyone obedient at high p, contributions and receipts roughly
  // balance inside the dead band, so rho stays near the initial 0 and the
  // system keeps the CMFSD(rho=0) performance.
  const SimResult r = run_cmfsd_sim(adapt_config(0.9, 0.0));
  ASSERT_FALSE(r.rho_trajectory_mean.empty());
  const double final_rho = r.rho_trajectory_mean.back();
  EXPECT_LT(final_rho, 0.35);
  EXPECT_LT(r.avg_online_per_file, 75.0);  // far below the ~98 of rho = 1
}

TEST(AdaptTest, CheaterMajorityDrivesObedientRhoUp) {
  // The paper's prediction: when most peers cheat, obedient peers detect
  // the persistent over-contribution (Delta > phi_hi) and self-protect,
  // pushing rho toward 1 (the system degenerates to MFCD-like behaviour).
  const SimResult honest = run_cmfsd_sim(adapt_config(0.9, 0.0));
  const SimResult cheated = run_cmfsd_sim(adapt_config(0.9, 0.85));
  ASSERT_FALSE(honest.rho_trajectory_mean.empty());
  ASSERT_FALSE(cheated.rho_trajectory_mean.empty());
  EXPECT_GT(cheated.rho_trajectory_mean.back(),
            honest.rho_trajectory_mean.back() + 0.2);
}

TEST(AdaptTest, StepSizeZeroFreezesRho) {
  SimConfig c = adapt_config(0.9, 0.5);
  c.adapt.step_up = 0.0;
  c.adapt.step_down = 0.0;
  const SimResult r = run_cmfsd_sim(c);
  for (const double rho : r.rho_trajectory_mean) {
    EXPECT_DOUBLE_EQ(rho, c.adapt.initial_rho);
  }
}

TEST(AdaptTest, InitialRhoIsRespected) {
  SimConfig c = adapt_config(0.9, 0.0);
  c.adapt.initial_rho = 0.6;
  c.adapt.step_up = 0.0;
  c.adapt.step_down = 0.0;
  const SimResult r = run_cmfsd_sim(c);
  ASSERT_FALSE(r.rho_trajectory_mean.empty());
  EXPECT_NEAR(r.rho_trajectory_mean.front(), 0.6, 1e-9);
}

TEST(AdaptTest, WideDeadBandSuppressesAdaptation) {
  SimConfig narrow = adapt_config(0.9, 0.85);
  SimConfig wide = narrow;
  wide.adapt.phi_lo = -1.0;  // absurdly wide: Delta never leaves the band
  wide.adapt.phi_hi = 1.0;
  const SimResult n = run_cmfsd_sim(narrow);
  const SimResult w = run_cmfsd_sim(wide);
  ASSERT_FALSE(w.rho_trajectory_mean.empty());
  EXPECT_NEAR(w.rho_trajectory_mean.back(), 0.0, 1e-12);
  EXPECT_GT(n.rho_trajectory_mean.back(), 0.2);
}

TEST(AdaptTest, ReplicationSummaryAveragesRho) {
  SimConfig c = adapt_config(0.9, 0.85);
  c.horizon = 2000.0;
  c.warmup = 600.0;
  const ReplicationSummary summary = run_replications(c, 3);
  ASSERT_EQ(summary.runs.size(), 3u);
  // Multi-file classes report their departure-time rho.
  bool any_positive = false;
  for (unsigned k = 1; k < c.num_files; ++k) {
    if (summary.class_mean_final_rho[k] > 0.05) any_positive = true;
  }
  EXPECT_TRUE(any_positive);
}

}  // namespace
}  // namespace btmf::sim
