// Heterogeneous per-file popularity in the simulator.
#include <gtest/gtest.h>

#include "btmf/fluid/hetero.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

TEST(HeteroSimTest, ClassArrivalRatesFollowPoissonBinomial) {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kMtsd;
  c.num_files = 4;
  c.file_probs = {0.9, 0.5, 0.2, 0.05};
  c.visit_rate = 2.0;
  c.horizon = 4000.0;
  c.warmup = 500.0;
  c.seed = 3;
  const SimResult r = run_simulation(c);

  const fluid::HeterogeneousCatalog catalog(c.file_probs, c.visit_rate);
  const auto expected = catalog.system_class_rates();
  for (unsigned i = 1; i <= 4; ++i) {
    EXPECT_NEAR(r.classes[i - 1].arrival_rate, expected[i - 1],
                0.15 * expected[i - 1] + 0.02)
        << "class " << i;
  }
}

TEST(HeteroSimTest, EmptyProbsFallBackToUniformCorrelation) {
  SimConfig uniform;
  uniform.scheme = fluid::SchemeKind::kMtsd;
  uniform.num_files = 3;
  uniform.correlation = 0.4;
  uniform.horizon = 1500.0;
  uniform.warmup = 300.0;
  uniform.seed = 8;
  SimConfig explicit_probs = uniform;
  explicit_probs.file_probs = {0.4, 0.4, 0.4};
  const SimResult a = run_simulation(uniform);
  const SimResult b = run_simulation(explicit_probs);
  // Identical RNG consumption => bitwise identical runs.
  EXPECT_DOUBLE_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(HeteroSimTest, UnrequestedFilesGetNoTraffic) {
  SimConfig c;
  c.scheme = fluid::SchemeKind::kMtcd;
  c.num_files = 3;
  c.file_probs = {0.8, 0.0, 0.3};
  c.visit_rate = 1.0;
  c.horizon = 1500.0;
  c.warmup = 300.0;
  const SimResult r = run_simulation(c);
  // Nobody can request more than 2 files.
  EXPECT_EQ(r.classes[2].completed_users, 0u);
  EXPECT_GT(r.classes[0].completed_users, 100u);
}

TEST(HeteroSimTest, WrongSizeProbsRejected) {
  SimConfig c;
  c.num_files = 3;
  c.file_probs = {0.5, 0.5};
  EXPECT_THROW((void)run_simulation(c), ConfigError);
  c.file_probs = {0.5, 0.5, 1.5};
  EXPECT_THROW((void)run_simulation(c), ConfigError);
}

TEST(HeteroSimTest, MtsdPerFileTimesUnaffectedBySkew) {
  // MTSD's per-file cycle is rate-independent, so even a skewed catalogue
  // leaves the per-file online time at ~80 for every populated class.
  SimConfig c;
  c.scheme = fluid::SchemeKind::kMtsd;
  c.num_files = 5;
  c.file_probs = fluid::HeterogeneousCatalog::zipf_profile(5, 1.2, 0.4);
  c.visit_rate = 1.0;
  c.horizon = 3000.0;
  c.warmup = 700.0;
  const SimResult r = run_simulation(c);
  for (unsigned i = 0; i < 5; ++i) {
    if (r.classes[i].completed_users < 80) continue;
    EXPECT_NEAR(r.classes[i].mean_online_per_file, 80.0, 8.0)
        << "class " << i + 1;
  }
}

}  // namespace
}  // namespace btmf::sim
