#include "btmf/sim/config.h"

#include <gtest/gtest.h>

#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

SimConfig valid() {
  SimConfig c;
  c.horizon = 100.0;
  c.warmup = 10.0;
  return c;
}

TEST(SimConfigTest, DefaultIsValid) {
  EXPECT_NO_THROW(valid().validate());
}

TEST(SimConfigTest, RejectsBadCorrelation) {
  SimConfig c = valid();
  c.correlation = 1.5;
  EXPECT_THROW((void)c.validate(), ConfigError);
  c.correlation = -0.1;
  EXPECT_THROW((void)c.validate(), ConfigError);
}

TEST(SimConfigTest, RejectsBadRates) {
  SimConfig c = valid();
  c.visit_rate = 0.0;
  EXPECT_THROW((void)c.validate(), ConfigError);
  c = valid();
  c.num_files = 0;
  EXPECT_THROW((void)c.validate(), ConfigError);
  c = valid();
  c.fluid.mu = -1.0;
  EXPECT_THROW((void)c.validate(), ConfigError);
}

TEST(SimConfigTest, RejectsBadRhoAndCheaters) {
  SimConfig c = valid();
  c.rho = 1.2;
  EXPECT_THROW((void)c.validate(), ConfigError);
  c = valid();
  c.cheater_fraction = -0.5;
  EXPECT_THROW((void)c.validate(), ConfigError);
}

TEST(SimConfigTest, RejectsBadTimes) {
  SimConfig c = valid();
  c.warmup = c.horizon;
  EXPECT_THROW((void)c.validate(), ConfigError);
  c = valid();
  c.horizon = 0.0;
  EXPECT_THROW((void)c.validate(), ConfigError);
  c = valid();
  c.file_size = 0.0;
  EXPECT_THROW((void)c.validate(), ConfigError);
}

TEST(SimConfigTest, RejectsBadAdaptSettings) {
  SimConfig c = valid();
  c.adapt.enabled = true;
  c.adapt.period = 0.0;
  EXPECT_THROW((void)c.validate(), ConfigError);

  c = valid();
  c.adapt.enabled = true;
  c.adapt.phi_lo = 1.0;
  c.adapt.phi_hi = -1.0;  // inverted dead band
  EXPECT_THROW((void)c.validate(), ConfigError);

  c = valid();
  c.adapt.enabled = true;
  c.adapt.consecutive = 0;
  EXPECT_THROW((void)c.validate(), ConfigError);

  c = valid();
  c.adapt.enabled = true;
  c.adapt.initial_rho = 2.0;
  EXPECT_THROW((void)c.validate(), ConfigError);
}

TEST(SimConfigTest, BadAdaptSettingsIgnoredWhenDisabled) {
  SimConfig c = valid();
  c.adapt.enabled = false;
  c.adapt.period = -1.0;  // invalid but dormant
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace btmf::sim
