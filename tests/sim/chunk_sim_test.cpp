#include "btmf/sim/chunk_sim.h"

#include <gtest/gtest.h>

#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

ChunkSimConfig small_config() {
  ChunkSimConfig c;
  c.num_chunks = 16;
  c.entry_rate = 1.0;
  c.horizon = 1500.0;
  c.warmup = 400.0;
  c.seed = 21;
  return c;
}

TEST(ChunkSimTest, DeterministicForFixedSeed) {
  const ChunkSimConfig c = small_config();
  const ChunkSimResult a = run_chunk_sim(c);
  const ChunkSimResult b = run_chunk_sim(c);
  EXPECT_EQ(a.completed_peers, b.completed_peers);
  EXPECT_DOUBLE_EQ(a.mean_download_time, b.mean_download_time);
  EXPECT_DOUBLE_EQ(a.emergent_eta, b.emergent_eta);
}

TEST(ChunkSimTest, EmergentEtaIsAValidEfficiency) {
  const ChunkSimResult r = run_chunk_sim(small_config());
  EXPECT_GT(r.completed_peers, 300u);
  EXPECT_GT(r.emergent_eta, 0.3);
  EXPECT_LE(r.emergent_eta, 1.0 + 1e-9);
  EXPECT_NEAR(r.downloader_upload_share + r.seed_upload_share, 1.0, 1e-12);
}

TEST(ChunkSimTest, MoreChunksIncreaseEfficiency) {
  // Qiu-Srikant's argument: with many chunks a downloader almost always
  // has something its neighbour needs, so eta -> 1.
  ChunkSimConfig coarse = small_config();
  coarse.num_chunks = 4;
  ChunkSimConfig fine = small_config();
  fine.num_chunks = 64;
  const ChunkSimResult a = run_chunk_sim(coarse);
  const ChunkSimResult b = run_chunk_sim(fine);
  EXPECT_GT(b.emergent_eta, a.emergent_eta);
  EXPECT_LT(b.mean_download_time, a.mean_download_time);
}

TEST(ChunkSimTest, FluidClosedFormPredictsMeasuredDownloadTime) {
  // Plugging the *measured* eta back into the paper's T formula must
  // predict the measured download time (closing the model loop).
  ChunkSimConfig c = small_config();
  c.num_chunks = 32;
  c.horizon = 2500.0;
  const ChunkSimResult r = run_chunk_sim(c);
  ASSERT_GT(r.fluid_prediction, 0.0);
  EXPECT_NEAR(r.mean_download_time, r.fluid_prediction,
              0.12 * r.fluid_prediction);
}

TEST(ChunkSimTest, SeedsPopulationMatchesLittlesLaw) {
  // Non-publisher seeds stay Exp(gamma): y ~ completion rate / gamma.
  ChunkSimConfig c = small_config();
  c.horizon = 2500.0;
  const ChunkSimResult r = run_chunk_sim(c);
  const double completion_rate =
      static_cast<double>(r.completed_peers) / (c.horizon - c.warmup);
  const double expected_seeds =
      completion_rate / c.fluid.gamma + c.initial_seeds;
  EXPECT_NEAR(r.avg_seeds, expected_seeds, 0.15 * expected_seeds);
}

TEST(ChunkSimTest, LowArrivalRateIncreasesIdleFraction) {
  // A nearly-empty swarm leaves uploaders with no interested receiver.
  ChunkSimConfig busy = small_config();
  ChunkSimConfig quiet = small_config();
  quiet.entry_rate = 0.02;
  quiet.horizon = 4000.0;
  quiet.warmup = 500.0;
  const ChunkSimResult a = run_chunk_sim(busy);
  const ChunkSimResult b = run_chunk_sim(quiet);
  EXPECT_GT(b.idle_fraction, a.idle_fraction);
}

TEST(ChunkSimTest, InvalidConfigsThrow) {
  ChunkSimConfig c = small_config();
  c.num_chunks = 0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = small_config();
  c.initial_seeds = 0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = small_config();
  c.credit_decay = 1.0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = small_config();
  c.warmup = c.horizon;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
}

TEST(ChunkSimTest, SeedShareGrowsWithSeedResidence) {
  // The Izal et al. "seeds sent 2x the data" observation reflects seed
  // *abundance* (low gamma), not downloader inefficiency: halving gamma
  // raises the seed upload share while eta stays near 1.
  ChunkSimConfig impatient = small_config();
  impatient.num_chunks = 32;
  ChunkSimConfig patient = impatient;
  patient.fluid.gamma = 0.025;
  const ChunkSimResult a = run_chunk_sim(impatient);
  const ChunkSimResult b = run_chunk_sim(patient);
  EXPECT_GT(b.seed_upload_share, a.seed_upload_share + 0.1);
  EXPECT_GT(b.emergent_eta, 0.7);  // efficiency unaffected
}

}  // namespace
}  // namespace btmf::sim
