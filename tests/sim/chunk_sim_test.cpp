#include "btmf/sim/chunk_sim.h"

#include <gtest/gtest.h>

#include "btmf/obs/metrics.h"
#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

ChunkSimConfig small_config() {
  ChunkSimConfig c;
  c.num_chunks = 16;
  c.entry_rate = 1.0;
  c.horizon = 1500.0;
  c.warmup = 400.0;
  c.seed = 21;
  return c;
}

TEST(ChunkSimTest, DeterministicForFixedSeed) {
  const ChunkSimConfig c = small_config();
  const ChunkSimResult a = run_chunk_sim(c);
  const ChunkSimResult b = run_chunk_sim(c);
  EXPECT_EQ(a.completed_peers, b.completed_peers);
  EXPECT_DOUBLE_EQ(a.mean_download_time, b.mean_download_time);
  EXPECT_DOUBLE_EQ(a.emergent_eta, b.emergent_eta);
}

TEST(ChunkSimTest, EmergentEtaIsAValidEfficiency) {
  const ChunkSimResult r = run_chunk_sim(small_config());
  EXPECT_GT(r.completed_peers, 300u);
  EXPECT_GT(r.emergent_eta, 0.3);
  EXPECT_LE(r.emergent_eta, 1.0 + 1e-9);
  EXPECT_NEAR(r.downloader_upload_share + r.seed_upload_share, 1.0, 1e-12);
}

TEST(ChunkSimTest, MoreChunksIncreaseEfficiency) {
  // Qiu-Srikant's argument: with many chunks a downloader almost always
  // has something its neighbour needs, so eta -> 1.
  ChunkSimConfig coarse = small_config();
  coarse.num_chunks = 4;
  ChunkSimConfig fine = small_config();
  fine.num_chunks = 64;
  const ChunkSimResult a = run_chunk_sim(coarse);
  const ChunkSimResult b = run_chunk_sim(fine);
  EXPECT_GT(b.emergent_eta, a.emergent_eta);
  EXPECT_LT(b.mean_download_time, a.mean_download_time);
}

TEST(ChunkSimTest, FluidClosedFormPredictsMeasuredDownloadTime) {
  // Plugging the *measured* eta back into the paper's T formula must
  // predict the measured download time (closing the model loop).
  ChunkSimConfig c = small_config();
  c.num_chunks = 32;
  c.horizon = 2500.0;
  const ChunkSimResult r = run_chunk_sim(c);
  ASSERT_GT(r.fluid_prediction, 0.0);
  EXPECT_NEAR(r.mean_download_time, r.fluid_prediction,
              0.12 * r.fluid_prediction);
}

TEST(ChunkSimTest, SeedsPopulationMatchesLittlesLaw) {
  // Non-publisher seeds stay Exp(gamma): y ~ completion rate / gamma.
  ChunkSimConfig c = small_config();
  c.horizon = 2500.0;
  const ChunkSimResult r = run_chunk_sim(c);
  const double completion_rate =
      static_cast<double>(r.completed_peers) / (c.horizon - c.warmup);
  const double expected_seeds =
      completion_rate / c.fluid.gamma + c.initial_seeds;
  EXPECT_NEAR(r.avg_seeds, expected_seeds, 0.15 * expected_seeds);
}

TEST(ChunkSimTest, LowArrivalRateIncreasesIdleFraction) {
  // A nearly-empty swarm leaves uploaders with no interested receiver.
  ChunkSimConfig busy = small_config();
  ChunkSimConfig quiet = small_config();
  quiet.entry_rate = 0.02;
  quiet.horizon = 4000.0;
  quiet.warmup = 500.0;
  const ChunkSimResult a = run_chunk_sim(busy);
  const ChunkSimResult b = run_chunk_sim(quiet);
  EXPECT_GT(b.idle_fraction, a.idle_fraction);
}

TEST(ChunkSimTest, InvalidConfigsThrow) {
  ChunkSimConfig c = small_config();
  c.num_chunks = 0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = small_config();
  c.initial_seeds = 0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = small_config();
  c.credit_decay = 1.0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = small_config();
  c.warmup = c.horizon;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
}

TEST(ChunkSimTest, SeedShareGrowsWithSeedResidence) {
  // The Izal et al. "seeds sent 2x the data" observation reflects seed
  // *abundance* (low gamma), not downloader inefficiency: halving gamma
  // raises the seed upload share while eta stays near 1.
  ChunkSimConfig impatient = small_config();
  impatient.num_chunks = 32;
  ChunkSimConfig patient = impatient;
  patient.fluid.gamma = 0.025;
  const ChunkSimResult a = run_chunk_sim(impatient);
  const ChunkSimResult b = run_chunk_sim(patient);
  EXPECT_GT(b.seed_upload_share, a.seed_upload_share + 0.1);
  EXPECT_GT(b.emergent_eta, 0.7);  // efficiency unaffected
}

// ---------------------------------------------------------------------------
// K = 1 bit-identity: the multi-file engine must draw exactly the variates
// the pre-refactor single-torrent substrate drew (docs/PROTOCOL.md). The
// literals below were captured from the pre-refactor simulator; 17
// significant digits round-trip doubles exactly, so EXPECT_EQ is
// bit-identity.
// ---------------------------------------------------------------------------

TEST(ChunkSimTest, K1PathIsBitIdenticalToThePreRefactorSubstrate) {
  {
    const ChunkSimResult r = run_chunk_sim(small_config());
    EXPECT_EQ(r.completed_peers, 1131u);
    EXPECT_EQ(r.mean_download_time, 31.744584438549946);
    EXPECT_EQ(r.emergent_eta, 0.86897945436173785);
    EXPECT_EQ(r.avg_downloaders, 33.738636363636367);
    EXPECT_EQ(r.avg_seeds, 22.09090909090909);
    EXPECT_EQ(r.downloader_upload_share, 0.5534402316726551);
    EXPECT_EQ(r.ci_download_time, 0.55094711404061059);
    EXPECT_EQ(r.fluid_prediction, 34.523255813953497);
  }
  {
    ChunkSimConfig c;
    c.num_chunks = 32;
    c.entry_rate = 0.7;
    c.horizon = 2000.0;
    c.warmup = 500.0;
    c.seed = 7;
    c.optimistic_prob = 0.1;
    c.credit_decay = 0.8;
    c.initial_seeds = 3;
    const ChunkSimResult r = run_chunk_sim(c);
    EXPECT_EQ(r.completed_peers, 1008u);
    EXPECT_EQ(r.mean_download_time, 28.645833333333307);
    EXPECT_EQ(r.emergent_eta, 0.92207999150156672);
    EXPECT_EQ(r.avg_downloaders, 19.611458333333335);
    EXPECT_EQ(r.avg_seeds, 15.651041666666666);
  }
  {
    ChunkSimConfig c;
    c.num_chunks = 8;
    c.entry_rate = 1.5;
    c.horizon = 1200.0;
    c.warmup = 300.0;
    c.seed = 99;
    c.optimistic_prob = 0.0;
    const ChunkSimResult r = run_chunk_sim(c);
    EXPECT_EQ(r.completed_peers, 1294u);
    EXPECT_EQ(r.mean_download_time, 37.765649149922687);
    EXPECT_EQ(r.emergent_eta, 0.76988010765842918);
    EXPECT_EQ(r.avg_downloaders, 56.763888888888886);
    EXPECT_EQ(r.avg_seeds, 26.631944444444443);
  }
}

TEST(ChunkSimTest, AllSchemesCoincideBitForBitAtK1) {
  // With one file there is nothing to schedule, so every multi-file
  // scheme must reduce to the same single-torrent protocol.
  const ChunkSimResult base = run_chunk_sim(small_config());
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtsd, fluid::SchemeKind::kMfcd,
        fluid::SchemeKind::kCmfsd}) {
    ChunkSimConfig c = small_config();
    c.scheme = scheme;
    const ChunkSimResult r = run_chunk_sim(c);
    EXPECT_EQ(r.completed_peers, base.completed_peers)
        << fluid::to_string(scheme);
    EXPECT_EQ(r.mean_download_time, base.mean_download_time)
        << fluid::to_string(scheme);
    EXPECT_EQ(r.emergent_eta, base.emergent_eta) << fluid::to_string(scheme);
  }
}

// ---------------------------------------------------------------------------
// Piece-selection policy zoo.
// ---------------------------------------------------------------------------

TEST(ChunkSimTest, PiecePolicyStringsRoundTrip) {
  for (const PiecePolicy policy :
       {PiecePolicy::kRarestFirst, PiecePolicy::kRandom,
        PiecePolicy::kModeSuppression}) {
    EXPECT_EQ(piece_policy_from_string(to_string(policy)), policy);
  }
  EXPECT_THROW((void)piece_policy_from_string("rarest"), ConfigError);
  EXPECT_THROW((void)piece_policy_from_string(""), ConfigError);
}

// Availability-scarce flash crowd: one publisher, fast-departing organic
// seeds. Here piece choice matters, and local rarest-first must (weakly)
// beat blind random selection on every seed — the Qiu-Srikant argument
// that rarest-first keeps neighbours mutually interesting.
ChunkSimConfig scarcity_config(std::uint64_t seed) {
  ChunkSimConfig c;
  c.num_chunks = 64;
  c.entry_rate = 0.25;
  c.fluid.gamma = 0.25;  // seeds leave almost immediately
  c.initial_seeds = 1;
  c.flash_crowd = 60;
  c.horizon = 1500.0;
  c.warmup = 0.0;  // measure the drain itself
  c.seed = seed;
  return c;
}

TEST(ChunkSimTest, RarestFirstWeaklyDominatesRandomUnderScarcity) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ChunkSimConfig c = scarcity_config(seed);
    c.policy = PiecePolicy::kRarestFirst;
    const ChunkSimResult rarest = run_chunk_sim(c);
    c.policy = PiecePolicy::kRandom;
    const ChunkSimResult random = run_chunk_sim(c);
    EXPECT_LE(rarest.avg_download_per_file, random.avg_download_per_file)
        << "seed " << seed;
  }
}

TEST(ChunkSimTest, ModeSuppressionTradesLatencyForTierSpread) {
  // RFwPMS suppresses the modal availability tier, deliberately paying
  // download time to avoid rarest-first herding; under the same scarce
  // flash crowd it must still drain the swarm, slower than pure
  // rarest-first.
  ChunkSimConfig c = scarcity_config(2);
  c.policy = PiecePolicy::kRarestFirst;
  const ChunkSimResult rarest = run_chunk_sim(c);
  c.policy = PiecePolicy::kModeSuppression;
  const ChunkSimResult suppressed = run_chunk_sim(c);
  EXPECT_GT(suppressed.completed_peers, 300u);
  EXPECT_GT(suppressed.avg_download_per_file, rarest.avg_download_per_file);
}

TEST(ChunkSimTest, FlashCrowdRaisesPeakPopulation) {
  ChunkSimConfig c = small_config();
  const ChunkSimResult calm = run_chunk_sim(c);
  c.flash_crowd = 80;
  const ChunkSimResult crowd = run_chunk_sim(c);
  EXPECT_GE(crowd.peak_downloaders, 80.0);
  EXPECT_GT(crowd.peak_downloaders, calm.peak_downloaders);
}

// ---------------------------------------------------------------------------
// Multi-file torrents (K > 1).
// ---------------------------------------------------------------------------

ChunkSimConfig multi_config(fluid::SchemeKind scheme) {
  ChunkSimConfig c;
  c.num_files = 3;
  c.num_chunks = 16;
  c.correlation = 0.5;
  c.entry_rate = 2.0 * (1.0 - 0.125);  // lambda0 = 2, users wanting >= 1
  c.scheme = scheme;
  c.horizon = 2200.0;
  c.warmup = 600.0;
  c.seed = 11;
  return c;
}

TEST(ChunkSimTest, MultiFileRunsExposePerFileAndPerClassBreakdowns) {
  const ChunkSimResult r = run_chunk_sim(multi_config(fluid::SchemeKind::kMtcd));
  ASSERT_EQ(r.files.size(), 3u);
  ASSERT_EQ(r.classes.size(), 3u);
  for (const ChunkFileResult& f : r.files) {
    EXPECT_GT(f.completions, 100u);
    EXPECT_GT(f.emergent_eta, 0.5);
    EXPECT_LE(f.emergent_eta, 1.0 + 1e-9);
    EXPECT_GT(f.avg_downloaders, 0.0);
    EXPECT_GT(f.avg_seeds, 0.0);
  }
  for (const ChunkClassResult& cls : r.classes) {
    EXPECT_GT(cls.completed_users, 50u);
    EXPECT_GT(cls.mean_online_time, cls.mean_download_time);
  }
  // Concurrent download of i files at 1/i rate each: class times are
  // close to linear in i (the paper's T_i = i * A).
  const double t1 = r.classes[0].mean_download_time;
  EXPECT_NEAR(r.classes[1].mean_download_time, 2.0 * t1, 0.35 * t1);
  EXPECT_NEAR(r.classes[2].mean_download_time, 3.0 * t1, 0.55 * t1);
}

TEST(ChunkSimTest, SequentialSchemeSeedsBetweenFiles) {
  // MTSD seeds each completed file for Exp(gamma) before starting the
  // next, so a class-i user's online time carries ~i seeding residences
  // on top of the download time.
  const ChunkSimResult r = run_chunk_sim(multi_config(fluid::SchemeKind::kMtsd));
  const double residence = 1.0 / multi_config(fluid::SchemeKind::kMtsd).fluid.gamma;
  for (unsigned i = 1; i <= 3; ++i) {
    const ChunkClassResult& cls = r.classes[i - 1];
    ASSERT_GT(cls.completed_users, 50u);
    const double seeding = cls.mean_online_time - cls.mean_download_time;
    EXPECT_NEAR(seeding, i * residence, 0.4 * i * residence) << "class " << i;
  }
}

TEST(ChunkSimTest, CmfsdDonatesCompletedSubtorrentBandwidth) {
  obs::MetricsRegistry metrics;
  ChunkSimConfig c = multi_config(fluid::SchemeKind::kCmfsd);
  c.rho = 0.5;
  c.obs.metrics = &metrics;
  (void)run_chunk_sim(c);
  const obs::MetricsSnapshot with_pool = metrics.snapshot();
  EXPECT_GT(with_pool.counters.at("chunk.donated_uploads"), 0u);

  obs::MetricsRegistry metrics_rho1;
  c.rho = 1.0;  // no donation: pure sequential tit-for-tat
  c.obs.metrics = &metrics_rho1;
  (void)run_chunk_sim(c);
  const obs::MetricsSnapshot no_pool = metrics_rho1.snapshot();
  EXPECT_EQ(no_pool.counters.at("chunk.donated_uploads"), 0u);
}

TEST(ChunkSimTest, MultiFileConfigValidation) {
  ChunkSimConfig c = multi_config(fluid::SchemeKind::kMtcd);
  c.num_files = 0;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = multi_config(fluid::SchemeKind::kMtcd);
  c.num_files = 33;  // piece bitmaps are 32-bit file masks
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = multi_config(fluid::SchemeKind::kMtcd);
  c.correlation = 0.0;  // nobody would want any file
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = multi_config(fluid::SchemeKind::kCmfsd);
  c.rho = 1.5;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
  c = multi_config(fluid::SchemeKind::kMtcd);
  c.suppression_prob = -0.1;
  EXPECT_THROW((void)run_chunk_sim(c), ConfigError);
}

}  // namespace
}  // namespace btmf::sim
