#include "btmf/sim/multi_torrent_sim.h"

#include <gtest/gtest.h>

#include "btmf/fluid/correlation.h"
#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

SimConfig small_config(fluid::SchemeKind scheme) {
  SimConfig c;
  c.scheme = scheme;
  c.num_files = 5;
  c.correlation = 0.5;
  c.visit_rate = 1.0;
  c.horizon = 2500.0;
  c.warmup = 600.0;
  c.seed = 99;
  return c;
}

TEST(MultiTorrentSimTest, DeterministicForFixedSeed) {
  const SimConfig c = small_config(fluid::SchemeKind::kMtsd);
  const SimResult a = run_multi_torrent_sim(c);
  const SimResult b = run_multi_torrent_sim(c);
  EXPECT_EQ(a.total_users, b.total_users);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.avg_online_per_file, b.avg_online_per_file);
}

TEST(MultiTorrentSimTest, DifferentSeedsDiffer) {
  SimConfig c = small_config(fluid::SchemeKind::kMtsd);
  const SimResult a = run_multi_torrent_sim(c);
  c.seed = 100;
  const SimResult b = run_multi_torrent_sim(c);
  EXPECT_NE(a.avg_online_per_file, b.avg_online_per_file);
}

TEST(MultiTorrentSimTest, MtsdMatchesRateIndependentFluidPrediction) {
  // T + 1/gamma = 80 per file regardless of correlation or visit rate.
  const SimResult r =
      run_multi_torrent_sim(small_config(fluid::SchemeKind::kMtsd));
  EXPECT_GT(r.total_users, 500u);
  EXPECT_NEAR(r.avg_online_per_file, 80.0, 4.0);
  EXPECT_NEAR(r.avg_download_per_file, 60.0, 3.0);
}

TEST(MultiTorrentSimTest, MtsdPerFileFairAcrossClasses) {
  const SimResult r =
      run_multi_torrent_sim(small_config(fluid::SchemeKind::kMtsd));
  for (unsigned k = 0; k < 5; ++k) {
    if (r.classes[k].completed_users < 30) continue;
    EXPECT_NEAR(r.classes[k].mean_online_per_file, 80.0, 8.0)
        << "class " << k + 1;
  }
}

TEST(MultiTorrentSimTest, MtcdMultiFileClassesFasterPerFile) {
  // Fig. 3's structural claim: under MTCD, per-file online time falls
  // with the class index (A + 1/(i gamma)).
  const SimResult r =
      run_multi_torrent_sim(small_config(fluid::SchemeKind::kMtcd));
  const auto& c1 = r.classes[0];
  const auto& c4 = r.classes[3];
  ASSERT_GT(c1.completed_users, 50u);
  ASSERT_GT(c4.completed_users, 50u);
  EXPECT_GT(c1.mean_online_per_file, c4.mean_online_per_file);
}

TEST(MultiTorrentSimTest, MfcdAndMtcdAgreeOnLittleMetrics) {
  // The paper's equivalence claim, tested at the agent level through the
  // population/arrival (Little's law) view.
  SimConfig c = small_config(fluid::SchemeKind::kMtcd);
  c.correlation = 1.0;
  c.horizon = 3000.0;
  const SimResult mtcd = run_multi_torrent_sim(c);
  c.scheme = fluid::SchemeKind::kMfcd;
  const SimResult mfcd = run_multi_torrent_sim(c);
  const auto& a = mtcd.classes[4];  // class 5 (= K) is the only one at p=1
  const auto& b = mfcd.classes[4];
  ASSERT_GT(a.completed_users, 100u);
  ASSERT_GT(b.completed_users, 100u);
  EXPECT_NEAR(a.little_online_time, b.little_online_time,
              0.12 * a.little_online_time);
}

TEST(MultiTorrentSimTest, MfcdJointFlagFallsBackToMtcdSemantics) {
  SimConfig c = small_config(fluid::SchemeKind::kMfcd);
  c.mfcd_joint_completion = false;
  SimConfig mtcd_config = c;
  mtcd_config.scheme = fluid::SchemeKind::kMtcd;
  // Identical seeds and identical event logic => identical results.
  const SimResult a = run_multi_torrent_sim(c);
  const SimResult b = run_multi_torrent_sim(mtcd_config);
  EXPECT_DOUBLE_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(MultiTorrentSimTest, ArrivalRatesMatchBinomialModel) {
  SimConfig c = small_config(fluid::SchemeKind::kMtsd);
  c.horizon = 4000.0;
  const SimResult r = run_multi_torrent_sim(c);
  const fluid::CorrelationModel corr(c.num_files, c.correlation,
                                     c.visit_rate);
  for (unsigned i = 1; i <= c.num_files; ++i) {
    const double expected = corr.system_entry_rate(i);
    EXPECT_NEAR(r.classes[i - 1].arrival_rate, expected,
                0.25 * expected + 0.02)
        << "class " << i;
  }
}

TEST(MultiTorrentSimTest, CensoredUsersAreCounted) {
  SimConfig c = small_config(fluid::SchemeKind::kMtcd);
  c.horizon = 900.0;  // too short for most visits to finish
  c.warmup = 100.0;
  const SimResult r = run_multi_torrent_sim(c);
  EXPECT_GT(r.censored_users, 0u);
}

TEST(MultiTorrentSimTest, RunawayPopulationGuardThrows) {
  SimConfig c = small_config(fluid::SchemeKind::kMtcd);
  c.max_active_peers = 10;
  EXPECT_THROW((void)run_multi_torrent_sim(c), SolverError);
}

TEST(MultiTorrentSimTest, CmfsdSchemeRejected) {
  SimConfig c = small_config(fluid::SchemeKind::kCmfsd);
  EXPECT_THROW((void)run_multi_torrent_sim(c), ConfigError);
}

TEST(MultiTorrentSimTest, SampleAndLittleViewsAgreeForMtsd) {
  // Two independent estimators of the same quantity.
  const SimResult r =
      run_multi_torrent_sim(small_config(fluid::SchemeKind::kMtsd));
  for (unsigned k = 0; k < 3; ++k) {
    const auto& cls = r.classes[k];
    if (cls.completed_users < 100) continue;
    EXPECT_NEAR(cls.little_online_time, cls.mean_online_per_file,
                0.12 * cls.mean_online_per_file)
        << "class " << k + 1;
  }
}

}  // namespace
}  // namespace btmf::sim
