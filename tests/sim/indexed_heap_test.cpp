// Micro-tests for the kernel's indexed min-heap and the SoA user pool it
// schedules over: decrease-key ordering, erase-from-the-middle integrity,
// and id re-insertion after the pool's free list recycles rows.
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btmf/sim/indexed_heap.h"
#include "btmf/sim/user_pool.h"

namespace btmf::sim {
namespace {

std::vector<std::size_t> drain(IndexedMinHeap& heap) {
  std::vector<std::size_t> order;
  while (!heap.empty()) {
    order.push_back(heap.top_id());
    heap.erase(heap.top_id());
  }
  return order;
}

TEST(IndexedHeapTest, PopsInKeyOrderWithIdTieBreak) {
  IndexedMinHeap heap;
  heap.resize(6);
  heap.set(3, 2.0);
  heap.set(0, 5.0);
  heap.set(5, 2.0);  // ties with id 3; id order must win
  heap.set(1, 1.0);
  heap.set(4, 5.0);  // ties with id 0
  EXPECT_TRUE(heap.validate());
  EXPECT_EQ(drain(heap), (std::vector<std::size_t>{1, 3, 5, 0, 4}));
}

TEST(IndexedHeapTest, DecreaseKeyPromotesEntry) {
  IndexedMinHeap heap;
  heap.resize(4);
  heap.set(0, 10.0);
  heap.set(1, 20.0);
  heap.set(2, 30.0);
  heap.set(3, 40.0);
  ASSERT_EQ(heap.top_id(), 0U);

  heap.set(3, 5.0);  // decrease-key: last entry becomes the minimum
  EXPECT_TRUE(heap.validate());
  EXPECT_EQ(heap.top_id(), 3U);
  EXPECT_DOUBLE_EQ(heap.top_key(), 5.0);

  heap.set(3, 25.0);  // increase-key: sifts back down
  EXPECT_TRUE(heap.validate());
  EXPECT_EQ(drain(heap), (std::vector<std::size_t>{0, 1, 3, 2}));
}

TEST(IndexedHeapTest, EraseMiddleKeepsHeapConsistent) {
  IndexedMinHeap heap;
  heap.resize(8);
  for (std::size_t id = 0; id < 8; ++id) {
    heap.set(id, static_cast<double>((id * 5) % 8));
  }
  // Erase an interior entry (neither top nor a leaf position).
  heap.erase(5);
  EXPECT_FALSE(heap.contains(5));
  std::string reason;
  ASSERT_TRUE(heap.validate(&reason)) << reason;
  // Keys are (id * 5) % 8; with id 5 (key 1) gone, ascending key order is:
  EXPECT_EQ(drain(heap), (std::vector<std::size_t>{0, 2, 7, 4, 1, 6, 3}));
  // Erasing an absent id is a no-op.
  heap.erase(5);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedHeapTest, RandomizedChurnAgainstStdOracle) {
  IndexedMinHeap heap;
  constexpr std::size_t kIds = 64;
  heap.resize(kIds);
  std::vector<double> oracle(kIds, 0.0);
  std::vector<bool> present(kIds, false);
  std::mt19937_64 gen(1234);
  std::uniform_real_distribution<double> key(0.0, 100.0);
  std::uniform_int_distribution<std::size_t> pick(0, kIds - 1);

  for (int step = 0; step < 4000; ++step) {
    const std::size_t id = pick(gen);
    if (present[id] && gen() % 3 == 0) {
      heap.erase(id);
      present[id] = false;
    } else {
      const double k = key(gen);
      heap.set(id, k);
      oracle[id] = k;
      present[id] = true;
    }
    if (step % 257 == 0) {
      std::string reason;
      ASSERT_TRUE(heap.validate(&reason)) << reason;
    }
    if (!heap.empty()) {
      std::size_t best = kIds;
      for (std::size_t i = 0; i < kIds; ++i) {
        if (!present[i]) continue;
        if (best == kIds || oracle[i] < oracle[best] ||
            (oracle[i] == oracle[best] && i < best)) {
          best = i;
        }
      }
      ASSERT_EQ(heap.top_id(), best);
    }
  }
}

TEST(IndexedHeapTest, RefillAfterPoolFreeListRecycling) {
  // The kernel keys heap entries by dense user id; when the pool recycles
  // a released row, the SAME id re-enters the heap with fresh keys. The
  // heap must treat the re-tenanted id as brand new.
  UserPool pool;
  IndexedMinHeap heap;
  const std::vector<unsigned> files{0, 1, 2};

  const std::size_t a = pool.create(files, 3, 0.0, false, /*seq=*/1);
  const std::size_t b = pool.create(files, 3, 0.1, false, /*seq=*/2);
  heap.resize(pool.size());
  heap.set(a, 4.0);
  heap.set(b, 2.0);
  ASSERT_EQ(heap.top_id(), b);

  // Retire `b`: heap entry erased, row released to the free list.
  heap.erase(b);
  pool.release(b);
  EXPECT_EQ(pool.seq(b), UserPool::kDeadSeq);
  EXPECT_EQ(pool.free_rows(), 1U);

  // The next admission recycles the row (LIFO) with a fresh seq...
  const std::size_t c = pool.create(files, 3, 0.2, true, /*seq=*/3);
  EXPECT_EQ(c, b);
  EXPECT_EQ(pool.free_rows(), 0U);
  EXPECT_EQ(pool.seq(c), 3U);
  EXPECT_TRUE(pool.sampled(c));
  // ...with every slot column reset to defaults.
  for (unsigned slot = 0; slot < 3; ++slot) {
    EXPECT_EQ(pool.state(c, slot), SlotState::kIdle);
    EXPECT_EQ(pool.sched_gen(c, slot), 0U);
    EXPECT_EQ(pool.file(c, slot), files[slot]);
  }

  // ...and the recycled id re-enters the heap as a fresh entry.
  EXPECT_FALSE(heap.contains(c));
  heap.set(c, 1.0);
  EXPECT_EQ(heap.top_id(), c);
  std::string reason;
  ASSERT_TRUE(heap.validate(&reason)) << reason;
  EXPECT_EQ(drain(heap), (std::vector<std::size_t>{c, a}));
}

TEST(IndexedHeapTest, PoolRecyclingIsLengthStableInArena) {
  // Same-length spans must be recycled rather than growing the arena —
  // the property that bounds slot-column memory under churn.
  UserPool pool;
  const std::vector<unsigned> files{4, 7};
  const std::size_t a = pool.create(files, 2, 0.0, false, 1);
  const std::size_t used = pool.arena().capacity();
  for (std::uint64_t seq = 2; seq < 50; ++seq) {
    pool.release(a);
    ASSERT_EQ(pool.arena().free_spans(), 1U);
    const std::size_t again = pool.create(files, 2, 0.0, false, seq);
    ASSERT_EQ(again, a);
    ASSERT_EQ(pool.arena().capacity(), used);
    ASSERT_EQ(pool.arena().free_spans(), 0U);
  }
}

}  // namespace
}  // namespace btmf::sim
