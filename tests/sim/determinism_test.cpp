// Determinism regression: one seed, one trajectory.
//
// The event kernel promises that every quantity in SimResult except the
// wall clock is a pure function of SimConfig — tie-breaks in the event
// queues are total orders and replication seeds are derived, never
// shared. These tests pin that promise down: re-running a config must be
// bit-identical, and run_replications must not depend on how many
// threads the pool happens to have.
#include <gtest/gtest.h>

#include <cstddef>

#include "btmf/parallel/thread_pool.h"
#include "btmf/sim/simulator.h"

namespace btmf::sim {
namespace {

SimConfig base_config(fluid::SchemeKind scheme) {
  SimConfig c;
  c.scheme = scheme;
  c.num_files = 4;
  c.correlation = 0.5;
  c.visit_rate = 2.0;
  c.horizon = 600.0;
  c.warmup = 150.0;
  c.seed = 77;
  if (scheme == fluid::SchemeKind::kCmfsd) c.rho = 0.3;
  return c;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t k = 0; k < a.classes.size(); ++k) {
    const PerClassResult& x = a.classes[k];
    const PerClassResult& y = b.classes[k];
    EXPECT_EQ(x.completed_users, y.completed_users) << "class " << k + 1;
    EXPECT_EQ(x.arrival_rate, y.arrival_rate);
    EXPECT_EQ(x.mean_online_per_file, y.mean_online_per_file);
    EXPECT_EQ(x.ci_online_per_file, y.ci_online_per_file);
    EXPECT_EQ(x.mean_download_per_file, y.mean_download_per_file);
    EXPECT_EQ(x.ci_download_per_file, y.ci_download_per_file);
    EXPECT_EQ(x.avg_downloaders, y.avg_downloaders);
    EXPECT_EQ(x.avg_seeds, y.avg_seeds);
    EXPECT_EQ(x.little_download_time, y.little_download_time);
    EXPECT_EQ(x.little_online_time, y.little_online_time);
    EXPECT_EQ(x.mean_final_rho, y.mean_final_rho);
  }
  EXPECT_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.avg_download_per_file, b.avg_download_per_file);
  EXPECT_EQ(a.avg_online_per_user, b.avg_online_per_user);
  EXPECT_EQ(a.measured_time, b.measured_time);
  EXPECT_EQ(a.total_users, b.total_users);
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.censored_users, b.censored_users);
  EXPECT_EQ(a.aborted_users, b.aborted_users);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rate_epochs, b.rate_epochs);
  EXPECT_EQ(a.peak_live_peers, b.peak_live_peers);
  EXPECT_EQ(a.rho_trajectory_time, b.rho_trajectory_time);
  EXPECT_EQ(a.rho_trajectory_mean, b.rho_trajectory_mean);
}

class DeterminismTest : public ::testing::TestWithParam<fluid::SchemeKind> {};

TEST_P(DeterminismTest, SameSeedBitIdenticalResult) {
  SimConfig c = base_config(GetParam());
  if (GetParam() != fluid::SchemeKind::kCmfsd) c.abort_rate = 0.01;
  expect_identical(run_simulation(c), run_simulation(c));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeterminismTest,
                         ::testing::Values(fluid::SchemeKind::kMtcd,
                                           fluid::SchemeKind::kMtsd,
                                           fluid::SchemeKind::kMfcd,
                                           fluid::SchemeKind::kCmfsd),
                         [](const auto& tpi) {
                           switch (tpi.param) {
                             case fluid::SchemeKind::kMtcd: return "Mtcd";
                             case fluid::SchemeKind::kMtsd: return "Mtsd";
                             case fluid::SchemeKind::kMfcd: return "Mfcd";
                             default: return "Cmfsd";
                           }
                         });

TEST(DeterminismTest, ReplicationsIndependentOfThreadPoolSize) {
  const SimConfig c = base_config(fluid::SchemeKind::kMtcd);
  parallel::ThreadPool one(1);
  parallel::ThreadPool four(4);
  const ReplicationSummary serial = run_replications(c, 6, one);
  const ReplicationSummary threaded = run_replications(c, 6, four);
  ASSERT_EQ(serial.runs.size(), threaded.runs.size());
  for (std::size_t r = 0; r < serial.runs.size(); ++r) {
    expect_identical(serial.runs[r], threaded.runs[r]);
  }
  EXPECT_EQ(serial.mean_online_per_file, threaded.mean_online_per_file);
  EXPECT_EQ(serial.stderr_online_per_file, threaded.stderr_online_per_file);
  EXPECT_EQ(serial.mean_download_per_file, threaded.mean_download_per_file);
  EXPECT_EQ(serial.class_little_online, threaded.class_little_online);
}

TEST(DeterminismTest, SingleReplicationHasZeroStandardError) {
  const SimConfig c = base_config(fluid::SchemeKind::kMtsd);
  const ReplicationSummary s = run_replications(c, 1);
  ASSERT_EQ(s.runs.size(), 1u);
  EXPECT_EQ(s.stderr_online_per_file, 0.0);
  EXPECT_EQ(s.stderr_download_per_file, 0.0);
  // The means are just the single run's values.
  EXPECT_EQ(s.mean_online_per_file, s.runs[0].avg_online_per_file);
  EXPECT_EQ(s.mean_download_per_file, s.runs[0].avg_download_per_file);
}

}  // namespace
}  // namespace btmf::sim
