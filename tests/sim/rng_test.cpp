#include "btmf/sim/rng.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace btmf::sim {
namespace {

TEST(RngTest, ExponentialHasRequestedMean) {
  RandomStream rng(1);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.05);
  EXPECT_NEAR(sum / n, 20.0, 0.5);  // mean = 1/rate
}

TEST(RngTest, UniformCoversUnitInterval) {
  RandomStream rng(2);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  RandomStream rng(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, IndexStaysInRangeAndIsRoughlyUniform) {
  RandomStream rng(4);
  std::vector<int> counts(5, 0);
  const int n = 25000;
  for (int i = 0; i < n; ++i) {
    const std::size_t idx = rng.index(5);
    ASSERT_LT(idx, 5u);
    ++counts[idx];
  }
  for (const int c : counts) EXPECT_NEAR(c, n / 5, n / 25);
}

TEST(RngTest, ShufflePermutesAllElements) {
  RandomStream rng(5);
  std::vector<int> items(20);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> original = items;
  rng.shuffle(items);
  EXPECT_NE(items, original);  // 1/20! odds of flaking
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, SameSeedSameStream) {
  RandomStream a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

}  // namespace
}  // namespace btmf::sim
