// Scale determinism contract: the sharded kernel's SimResult is a pure
// function of SimConfig MINUS the execution knobs. Every field — metrics,
// trajectories, obs counters, fault/recovery counters — must be
// bit-identical across every shards x kernel_threads configuration, with
// shards = 1 defining the reference. docs/SCALE.md states the contract;
// this suite enforces it for all four schemes, with and without an
// active fault plan. (No goldens: each case compares run vs run.)
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "btmf/sim/faults.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

SimConfig scale_config(fluid::SchemeKind scheme, bool with_faults) {
  SimConfig c;
  c.scheme = scheme;
  c.num_files = 4;
  c.correlation = 0.5;
  c.visit_rate = 2.0;
  c.horizon = 500.0;
  c.warmup = 125.0;
  c.seed = 913;
  c.abort_rate = 0.01;
  if (scheme == fluid::SchemeKind::kCmfsd) {
    c.rho = 0.3;
    c.abort_rate = 0.0;  // CMFSD path models aborts separately
  }
  if (with_faults) {
    c.faults.churn_bursts.push_back({200.0, 0.5, 1.0, 2.0});
    c.faults.bandwidth_faults.push_back({250.0, 60.0, 0.5});
  }
  return c;
}

void expect_bit_identical(const SimResult& a, const SimResult& b,
                          const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t k = 0; k < a.classes.size(); ++k) {
    SCOPED_TRACE("class " + std::to_string(k + 1));
    const PerClassResult& x = a.classes[k];
    const PerClassResult& y = b.classes[k];
    EXPECT_EQ(x.completed_users, y.completed_users);
    EXPECT_EQ(x.arrival_rate, y.arrival_rate);
    EXPECT_EQ(x.mean_online_per_file, y.mean_online_per_file);
    EXPECT_EQ(x.ci_online_per_file, y.ci_online_per_file);
    EXPECT_EQ(x.mean_download_per_file, y.mean_download_per_file);
    EXPECT_EQ(x.ci_download_per_file, y.ci_download_per_file);
    EXPECT_EQ(x.avg_downloaders, y.avg_downloaders);
    EXPECT_EQ(x.avg_seeds, y.avg_seeds);
    EXPECT_EQ(x.little_download_time, y.little_download_time);
    EXPECT_EQ(x.little_online_time, y.little_online_time);
    EXPECT_EQ(x.mean_final_rho, y.mean_final_rho);
  }
  // Headline metrics.
  EXPECT_EQ(a.avg_online_per_file, b.avg_online_per_file);
  EXPECT_EQ(a.avg_download_per_file, b.avg_download_per_file);
  EXPECT_EQ(a.avg_online_per_user, b.avg_online_per_user);
  EXPECT_EQ(a.measured_time, b.measured_time);
  // Population accounting.
  EXPECT_EQ(a.total_users, b.total_users);
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
  EXPECT_EQ(a.censored_users, b.censored_users);
  EXPECT_EQ(a.aborted_users, b.aborted_users);
  // Observability counters (everything but the wall clock).
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rate_epochs, b.rate_epochs);
  EXPECT_EQ(a.peak_live_peers, b.peak_live_peers);
  // Fault & recovery counters.
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.downloads_killed, b.downloads_killed);
  EXPECT_EQ(a.arrivals_dropped, b.arrivals_dropped);
  EXPECT_EQ(a.arrivals_queued, b.arrivals_queued);
  EXPECT_EQ(a.readmissions, b.readmissions);
  EXPECT_EQ(a.readmission_queue_peak, b.readmission_queue_peak);
  EXPECT_EQ(a.time_to_recover, b.time_to_recover);
  EXPECT_EQ(a.faults_unrecovered, b.faults_unrecovered);
  // Trajectories, elementwise.
  EXPECT_EQ(a.rho_trajectory_time, b.rho_trajectory_time);
  EXPECT_EQ(a.rho_trajectory_mean, b.rho_trajectory_mean);
  EXPECT_EQ(a.population_time, b.population_time);
  EXPECT_EQ(a.downloaders_trajectory, b.downloaders_trajectory);
  EXPECT_EQ(a.seeds_trajectory, b.seeds_trajectory);
}

struct ScaleCase {
  fluid::SchemeKind scheme;
  bool with_faults;
};

class ScaleDeterminismTest : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ScaleDeterminismTest, BitIdenticalAcrossShardsAndThreads) {
  const ScaleCase& param = GetParam();
  SimConfig reference_cfg = scale_config(param.scheme, param.with_faults);
  reference_cfg.shards = 1;
  reference_cfg.kernel_threads = 1;
  const SimResult reference = run_simulation(reference_cfg);

  // Faulted runs cannot shard (the fault layer is globally coupled):
  // shards > 1 with a plan is a typed ConfigError, never a silent
  // fallback — and the single-shard faulted run must still be
  // bit-identical across thread counts.
  const std::vector<unsigned> shard_counts =
      param.with_faults ? std::vector<unsigned>{1U}
                        : std::vector<unsigned>{2U, 7U};
  for (const unsigned shards : shard_counts) {
    for (const unsigned threads : {1U, 4U}) {
      SimConfig c = scale_config(param.scheme, param.with_faults);
      c.shards = shards;
      c.kernel_threads = threads;
      expect_bit_identical(reference, run_simulation(c),
                           "shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads));
    }
  }
  if (param.with_faults) {
    SimConfig c = scale_config(param.scheme, true);
    c.shards = 2;
    EXPECT_THROW(run_simulation(c), ConfigError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ScaleDeterminismTest,
    ::testing::Values(ScaleCase{fluid::SchemeKind::kMtcd, false},
                      ScaleCase{fluid::SchemeKind::kMtcd, true},
                      ScaleCase{fluid::SchemeKind::kMtsd, false},
                      ScaleCase{fluid::SchemeKind::kMtsd, true},
                      ScaleCase{fluid::SchemeKind::kMfcd, false},
                      ScaleCase{fluid::SchemeKind::kMfcd, true},
                      ScaleCase{fluid::SchemeKind::kCmfsd, false},
                      ScaleCase{fluid::SchemeKind::kCmfsd, true}),
    [](const auto& tpi) {
      std::string name;
      switch (tpi.param.scheme) {
        case fluid::SchemeKind::kMtcd: name = "Mtcd"; break;
        case fluid::SchemeKind::kMtsd: name = "Mtsd"; break;
        case fluid::SchemeKind::kMfcd: name = "Mfcd"; break;
        case fluid::SchemeKind::kCmfsd: name = "Cmfsd"; break;
        default: name = "Unknown"; break;
      }
      return name + (tpi.param.with_faults ? "Faulted" : "Clean");
    });

// The paranoid auditor must hold across the epoch barriers too: every
// invariant walk (per-shard heaps, live lists, population pools, and the
// cross-shard epoch clock) runs at each barrier without tripping.
// (Faulted plans cannot shard, so the sharded paranoid walk runs clean
// and the faulted one runs on the single-shard decomposed path.)
TEST(ScaleDeterminismTest, ParanoidAuditCleanUnderSharding) {
  SimConfig c = scale_config(fluid::SchemeKind::kMtcd, false);
  c.paranoid = true;
  c.shards = 3;
  c.kernel_threads = 2;
  SimConfig serial = scale_config(fluid::SchemeKind::kMtcd, false);
  expect_bit_identical(run_simulation(serial), run_simulation(c),
                       "paranoid shards=3 threads=2");
}

TEST(ScaleDeterminismTest, ParanoidAuditCleanFaultedSingleShard) {
  SimConfig c = scale_config(fluid::SchemeKind::kMtcd, true);
  c.paranoid = true;
  SimConfig serial = scale_config(fluid::SchemeKind::kMtcd, true);
  expect_bit_identical(run_simulation(serial), run_simulation(c),
                       "paranoid faulted single shard");
}

}  // namespace
}  // namespace btmf::sim
