#include "btmf/sim/stats.h"

#include <gtest/gtest.h>

#include "btmf/util/error.h"

namespace btmf::sim {
namespace {

TEST(StatsCollectorTest, RecordsPerClassSamples) {
  StatsCollector c(3);
  c.record_user(/*class=*/2, /*files=*/2, /*online=*/160.0,
                /*download=*/120.0, 0.0, false);
  c.record_user(2, 2, 200.0, 140.0, 0.0, false);
  const SimResult r = c.finalize(100.0, 5);
  EXPECT_EQ(r.classes[1].completed_users, 2u);
  EXPECT_DOUBLE_EQ(r.classes[1].mean_online_per_file, 90.0);
  EXPECT_DOUBLE_EQ(r.classes[1].mean_download_per_file, 65.0);
  EXPECT_EQ(r.classes[0].completed_users, 0u);
}

TEST(StatsCollectorTest, SystemAveragesWeightByFiles) {
  StatsCollector c(2);
  c.record_user(1, 1, 80.0, 60.0, 0.0, false);   // 1 file
  c.record_user(2, 2, 200.0, 120.0, 0.0, false); // 2 files
  const SimResult r = c.finalize(10.0, 2);
  // (80 + 200) / (1 + 2)
  EXPECT_NEAR(r.avg_online_per_file, 280.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.avg_download_per_file, 60.0, 1e-12);
  EXPECT_NEAR(r.avg_online_per_user, 140.0, 1e-12);
  EXPECT_EQ(r.total_users, 2u);
}

TEST(StatsCollectorTest, LittleFieldsFromPopulationsAndArrivals) {
  StatsCollector c(1);
  // Population of 6 downloaders and 2 seeds for the whole window.
  c.observe_populations({6.0}, {2.0}, 50.0);
  for (int i = 0; i < 10; ++i) c.record_arrival(1);
  const SimResult r = c.finalize(/*measured_time=*/50.0, 10);
  EXPECT_DOUBLE_EQ(r.classes[0].arrival_rate, 0.2);
  EXPECT_DOUBLE_EQ(r.classes[0].avg_downloaders, 6.0);
  EXPECT_DOUBLE_EQ(r.classes[0].little_download_time, 30.0);
  EXPECT_DOUBLE_EQ(r.classes[0].little_online_time, 40.0);
}

TEST(StatsCollectorTest, PopulationsAreTimeWeighted) {
  StatsCollector c(1);
  c.observe_populations({10.0}, {0.0}, 1.0);
  c.observe_populations({0.0}, {0.0}, 3.0);
  const SimResult r = c.finalize(4.0, 0);
  EXPECT_DOUBLE_EQ(r.classes[0].avg_downloaders, 2.5);
}

TEST(StatsCollectorTest, RhoSamplesOnlyFromAdaptiveUsers) {
  StatsCollector c(2);
  c.record_user(2, 2, 100.0, 80.0, /*final_rho=*/0.7, /*adaptive=*/true);
  c.record_user(2, 2, 100.0, 80.0, /*final_rho=*/0.1, /*adaptive=*/false);
  const SimResult r = c.finalize(10.0, 2);
  EXPECT_DOUBLE_EQ(r.classes[1].mean_final_rho, 0.7);
}

TEST(StatsCollectorTest, TrajectoryAndCounters) {
  StatsCollector c(1);
  c.record_rho_sample(10.0, 0.3);
  c.record_rho_sample(20.0, 0.5);
  c.record_censored();
  c.record_event();
  c.record_event();
  const SimResult r = c.finalize(30.0, 7);
  ASSERT_EQ(r.rho_trajectory_time.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rho_trajectory_mean[1], 0.5);
  EXPECT_EQ(r.censored_users, 1u);
  EXPECT_EQ(r.events_processed, 2u);
  EXPECT_EQ(r.total_arrivals, 7u);
}

TEST(StatsCollectorTest, ZeroClassesRejected) {
  EXPECT_THROW((void)StatsCollector(0), ConfigError);
}

}  // namespace
}  // namespace btmf::sim
