#include "btmf/serve/protocol.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "btmf/model/wire.h"
#include "btmf/serve/socket.h"
#include "btmf/util/error.h"

namespace btmf::serve {
namespace {

// --- grammar round trips ---------------------------------------------------

TEST(ServeProtocolTest, HelloRoundTrips) {
  const Request request = parse_request(encode_hello());
  EXPECT_EQ(request.kind, RequestKind::kHello);
  EXPECT_EQ(request.protocol_version, kProtocolVersion);
  EXPECT_EQ(request.salt, handshake_salt());
}

TEST(ServeProtocolTest, EvaluateRoundTrips) {
  model::ScenarioSpec spec;
  spec.correlation = 0.25;
  spec.seed = 1234;
  const Request request =
      parse_request(encode_evaluate("kernel-sim", spec));
  EXPECT_EQ(request.kind, RequestKind::kEvaluate);
  EXPECT_EQ(request.backend, "kernel-sim");
  // The embedded spec travels as its fingerprint; decoding it yields a
  // spec with the identical fingerprint (the cache-key agreement).
  EXPECT_EQ(request.spec.fingerprint(), spec.fingerprint());
}

TEST(ServeProtocolTest, SweepRoundTrips) {
  const model::ScenarioSpec spec;
  const std::vector<double> values{0.1, 0.5, 1.0 / 3.0};
  const Request request =
      parse_request(encode_sweep("fluid-equilibrium", "p", values, spec));
  EXPECT_EQ(request.kind, RequestKind::kSweep);
  EXPECT_EQ(request.axis, "p");
  EXPECT_EQ(request.values, values);  // bit-exact doubles on the wire
  EXPECT_EQ(request.spec.fingerprint(), spec.fingerprint());
}

TEST(ServeProtocolTest, StatsAndPingRoundTrip) {
  EXPECT_EQ(parse_request(encode_stats()).kind, RequestKind::kStats);
  EXPECT_EQ(parse_request(encode_ping()).kind, RequestKind::kPing);
  EXPECT_EQ(parse_response(encode_pong()).kind, ResponseKind::kPong);
  EXPECT_EQ(parse_response(encode_welcome()).kind, ResponseKind::kWelcome);
}

TEST(ServeProtocolTest, OkResponseRoundTrips) {
  const std::map<std::string, double> values{{"a", 1.0 / 3.0},
                                             {"b", -2.5e-300}};
  const Response response =
      parse_response(encode_ok(values, /*cached=*/true, /*coalesced=*/false));
  EXPECT_EQ(response.kind, ResponseKind::kOk);
  EXPECT_TRUE(response.cached);
  EXPECT_FALSE(response.coalesced);
  EXPECT_EQ(response.values, values);
}

TEST(ServeProtocolTest, SweepOkRoundTripsMixedPoints) {
  std::vector<PointReply> points(3);
  points[0].ok = true;
  points[0].values = {{"online", 42.5}};
  points[1].code = ErrorCode::kFailed;
  points[1].message = "solver diverged\nwith a newline";
  points[2].ok = true;
  points[2].values = {{"online", 1e-17}};
  const Response response = parse_response(encode_sweep_ok(points));
  ASSERT_EQ(response.kind, ResponseKind::kSweepOk);
  ASSERT_EQ(response.points.size(), 3u);
  EXPECT_TRUE(response.points[0].ok);
  EXPECT_EQ(response.points[0].values.at("online"), 42.5);
  EXPECT_FALSE(response.points[1].ok);
  EXPECT_EQ(response.points[1].code, ErrorCode::kFailed);
  EXPECT_EQ(response.points[1].message, points[1].message);
  EXPECT_EQ(response.points[2].values.at("online"), 1e-17);
}

TEST(ServeProtocolTest, StatsOkPreservesJsonVerbatim) {
  const std::string json = "{\n  \"a\": 1,\n  \"b\\\\\": 2\n}";
  const Response response = parse_response(encode_stats_ok(json));
  ASSERT_EQ(response.kind, ResponseKind::kStatsOk);
  EXPECT_EQ(response.stats_json, json);
}

TEST(ServeProtocolTest, ErrorResponseRoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kVersionMismatch,
        ErrorCode::kUnsupported, ErrorCode::kFailed, ErrorCode::kOverloaded,
        ErrorCode::kDraining}) {
    const Response response =
        parse_response(encode_error(code, "why\nmulti-line"));
    EXPECT_EQ(response.kind, ResponseKind::kError);
    EXPECT_EQ(response.code, code);
    EXPECT_EQ(response.message, "why\nmulti-line");
    EXPECT_EQ(error_code_from_string(to_string(code)), code);
  }
  EXPECT_THROW((void)error_code_from_string("nonsense"), ProtocolError);
}

TEST(ServeProtocolTest, RejectsGrammarGarbage) {
  EXPECT_THROW(parse_request(""), ProtocolError);
  EXPECT_THROW(parse_request("frobnicate now"), ProtocolError);
  EXPECT_THROW(parse_request("evaluate"), ProtocolError);
  EXPECT_THROW(parse_request("hello one two three four"), ProtocolError);
  EXPECT_THROW(parse_response(""), ProtocolError);
  EXPECT_THROW(parse_response("yes"), ProtocolError);
  EXPECT_THROW(parse_response("ok cached=2 coalesced=0\n"), ProtocolError);
}

TEST(ServeProtocolTest, RejectsMalformedSpecWithConfigError) {
  // Well-formed frame grammar, bad embedded spec: typed as ConfigError so
  // the daemon can keep the connection and answer bad-request.
  EXPECT_THROW(parse_request("evaluate kernel-sim\nspec k=10\n"),
               ConfigError);
}

TEST(ServeProtocolTest, BoundsSweepValues) {
  const model::ScenarioSpec spec;
  const std::vector<double> too_many(kMaxSweepValues + 1, 0.5);
  EXPECT_THROW(encode_sweep("kernel-sim", "p", too_many, spec),
               ProtocolError);
  EXPECT_THROW(encode_sweep("kernel-sim", "p", {}, spec), ProtocolError);
}

// --- framing over a real socket pair ---------------------------------------

class ServeFramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!serve_supported()) GTEST_SKIP() << "POSIX sockets unavailable";
  }

  /// Writes raw bytes (bypassing write_frame) to inject torn/garbage data.
  static void write_raw(Socket& socket, const std::string& bytes) {
    ASSERT_EQ(::write(socket.fd(), bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

  static std::string header_for(std::uint32_t length) {
    std::string header(4, '\0');
    header[0] = static_cast<char>(length >> 24);
    header[1] = static_cast<char>(length >> 16);
    header[2] = static_cast<char>(length >> 8);
    header[3] = static_cast<char>(length);
    return header;
  }
};

TEST_F(ServeFramingTest, FramesRoundTripThroughASocketPair) {
  auto [a, b] = Socket::pair();
  a.write_frame("ping\n");
  a.write_frame(std::string(1000, 'x'));
  EXPECT_EQ(b.read_frame(), "ping\n");
  EXPECT_EQ(b.read_frame(), std::string(1000, 'x'));
}

TEST_F(ServeFramingTest, CleanCloseOnAFrameBoundaryIsEof) {
  auto [a, b] = Socket::pair();
  a.write_frame("stats\n");
  a.close();
  EXPECT_EQ(b.read_frame(), "stats\n");
  EXPECT_EQ(b.read_frame(), std::nullopt);
}

TEST_F(ServeFramingTest, TornHeaderIsAProtocolError) {
  auto [a, b] = Socket::pair();
  write_raw(a, header_for(10).substr(0, 2));  // half a length header
  a.close();
  EXPECT_THROW((void)b.read_frame(), ProtocolError);
}

TEST_F(ServeFramingTest, TruncatedPayloadIsAProtocolError) {
  auto [a, b] = Socket::pair();
  write_raw(a, header_for(10) + "abc");  // promises 10 bytes, sends 3
  a.close();
  EXPECT_THROW((void)b.read_frame(), ProtocolError);
}

TEST_F(ServeFramingTest, OversizedLengthHeaderIsRejectedNotAllocated) {
  auto [a, b] = Socket::pair();
  // 0xFFFFFFFF as a length must be treated as garbage, not a 4 GiB
  // allocation request.
  write_raw(a, header_for(0xFFFFFFFFu));
  EXPECT_THROW((void)b.read_frame(), ProtocolError);
  auto [c, d] = Socket::pair();
  write_raw(c, header_for(kMaxFrameBytes + 1));
  EXPECT_THROW((void)d.read_frame(), ProtocolError);
}

TEST_F(ServeFramingTest, ZeroLengthFrameIsAProtocolError) {
  auto [a, b] = Socket::pair();
  write_raw(a, header_for(0));
  EXPECT_THROW((void)b.read_frame(), ProtocolError);
}

TEST_F(ServeFramingTest, GarbageBytesAreAProtocolErrorSomewhere) {
  // Random text bytes: the first 4 land in the length header and decode
  // to a huge length ("GARB" = 0x47415242 > 1 MiB) — rejected.
  auto [a, b] = Socket::pair();
  write_raw(a, "GARBAGE GARBAGE GARBAGE");
  a.close();
  EXPECT_THROW((void)b.read_frame(), ProtocolError);
}

TEST_F(ServeFramingTest, WriteFrameRefusesOversizedPayloads) {
  auto [a, b] = Socket::pair();
  const std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(a.write_frame(huge), ProtocolError);
}

TEST_F(ServeFramingTest, EndpointParsingRoundTrips) {
  const Endpoint unix_ep = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.describe(), "unix:/tmp/x.sock");
  const Endpoint bare = Endpoint::parse("relative/path.sock");
  EXPECT_EQ(bare.kind, Endpoint::Kind::kUnix);
  const Endpoint tcp = Endpoint::parse("tcp:127.0.0.1:8080");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8080);
  EXPECT_EQ(tcp.describe(), "tcp:127.0.0.1:8080");
  EXPECT_THROW(Endpoint::parse(""), ConfigError);
  EXPECT_THROW(Endpoint::parse("tcp:nohost"), ConfigError);
  EXPECT_THROW(Endpoint::parse("tcp:h:notaport"), ConfigError);
}

}  // namespace
}  // namespace btmf::serve
