#include "btmf/serve/daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "btmf/robust/isolate.h"
#include "btmf/serve/client.h"
#include "btmf/serve/protocol.h"
#include "btmf/util/error.h"

namespace btmf::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!serve_supported()) GTEST_SKIP() << "POSIX sockets unavailable";
  }

  DaemonOptions base_options(const std::string& name) {
    dir_ = fresh_dir("serve_daemon_" + name);
    DaemonOptions options;
    options.endpoint = Endpoint::parse("unix:" + dir_ + "/d.sock");
    options.cache_dir = dir_ + "/cache";
    options.workers = 2;
    return options;
  }

  model::ScenarioSpec quick_spec(std::uint64_t seed = 42) {
    model::ScenarioSpec spec;
    spec.scheme = fluid::SchemeKind::kCmfsd;
    spec.correlation = 0.9;
    spec.rho = 0.1;
    spec.seed = seed;
    return spec;
  }

  std::string dir_;
};

TEST_F(ServeDaemonTest, EvaluateMatchesTheDirectBackendBitwise) {
  Daemon daemon(base_options("bitwise"));
  daemon.start();
  Client client = Client::connect(daemon.endpoint());
  const model::ScenarioSpec spec = quick_spec();

  const EvalReply reply = client.evaluate("fluid-equilibrium", spec);
  ASSERT_TRUE(reply.ok) << reply.message;
  EXPECT_FALSE(reply.cached);
  const robust::Values direct = default_eval("fluid-equilibrium", spec);
  ASSERT_EQ(reply.values.size(), direct.size());
  for (const auto& [name, value] : direct) {
    // Bit-identical across the wire: exact round-trip doubles end to end.
    EXPECT_EQ(reply.at(name), value) << name;
  }
  daemon.drain();
}

TEST_F(ServeDaemonTest, SecondIdenticalRequestIsACacheHit) {
  Daemon daemon(base_options("cachehit"));
  daemon.start();
  Client client = Client::connect(daemon.endpoint());
  const EvalReply first = client.evaluate("fluid-equilibrium", quick_spec());
  const EvalReply second =
      client.evaluate("fluid-equilibrium", quick_spec());
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.values, second.values);

  const obs::MetricsSnapshot snapshot = daemon.stats();
  EXPECT_EQ(snapshot.counters.at("serve.cache_hit"), 1u);
  EXPECT_EQ(snapshot.counters.at("serve.evaluations"), 1u);
  daemon.drain();
}

TEST_F(ServeDaemonTest, ColdCacheSurvivesARestartViaTheDisk) {
  DaemonOptions options = base_options("restart");
  {
    Daemon daemon(options);
    daemon.start();
    Client client = Client::connect(daemon.endpoint());
    ASSERT_TRUE(client.evaluate("fluid-equilibrium", quick_spec()).ok);
    daemon.drain();
  }
  Daemon reborn(options);
  reborn.start();
  Client client = Client::connect(reborn.endpoint());
  const EvalReply reply = client.evaluate("fluid-equilibrium", quick_spec());
  ASSERT_TRUE(reply.ok);
  EXPECT_TRUE(reply.cached) << "disk cache must outlive the daemon";
  reborn.drain();
}

TEST_F(ServeDaemonTest, NIdenticalConcurrentRequestsCostOneEvaluation) {
  constexpr int kClients = 8;
  DaemonOptions options = base_options("coalesce");
  std::atomic<int> evaluations{0};
  options.eval = [&](const std::string& backend,
                     const model::ScenarioSpec& spec) {
    evaluations.fetch_add(1);
    std::this_thread::sleep_for(300ms);  // hold the window open
    return default_eval(backend, spec);
  };
  Daemon daemon(options);
  daemon.start();

  std::vector<EvalReply> replies(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        Client client = Client::connect(daemon.endpoint());
        replies[static_cast<std::size_t>(i)] =
            client.evaluate("fluid-equilibrium", quick_spec());
      });
    }
    for (auto& thread : clients) thread.join();
  }

  EXPECT_EQ(evaluations.load(), 1)
      << "duplicate in-flight requests must coalesce onto one computation";
  for (const EvalReply& reply : replies) {
    ASSERT_TRUE(reply.ok) << reply.message;
    EXPECT_EQ(reply.values, replies[0].values)
        << "every coalesced waiter must receive the identical result";
  }
  const obs::MetricsSnapshot snapshot = daemon.stats();
  EXPECT_EQ(snapshot.counters.at("serve.evaluations"), 1u);
  EXPECT_GE(snapshot.counters.at("serve.coalesced") +
                snapshot.counters.at("serve.cache_hit"),
            static_cast<std::uint64_t>(kClients - 1));
  daemon.drain();
}

TEST_F(ServeDaemonTest, FullQueueAnswersTypedOverload) {
  DaemonOptions options = base_options("overload");
  options.workers = 1;
  options.queue_depth = 1;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  std::atomic<int> started{0};
  options.eval = [&](const std::string& backend,
                     const model::ScenarioSpec& spec) {
    started.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
    return default_eval(backend, spec);
  };
  Daemon daemon(options);
  daemon.start();

  // Request 1 occupies the single worker; request 2 fills the depth-1
  // queue; request 3 must be refused with a typed overload, immediately.
  std::thread first([&] {
    Client client = Client::connect(daemon.endpoint());
    EXPECT_TRUE(client.evaluate("fluid-equilibrium", quick_spec(1)).ok);
  });
  while (started.load() == 0) std::this_thread::sleep_for(1ms);
  std::thread second([&] {
    Client client = Client::connect(daemon.endpoint());
    EXPECT_TRUE(client.evaluate("fluid-equilibrium", quick_spec(2)).ok);
  });
  // Give request 2 a moment to enter the queue.
  std::this_thread::sleep_for(100ms);

  Client third = Client::connect(daemon.endpoint());
  const EvalReply rejected =
      third.evaluate("fluid-equilibrium", quick_spec(3));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, ErrorCode::kOverloaded);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  first.join();
  second.join();
  EXPECT_GE(daemon.stats().counters.at("serve.overload"), 1u);
  daemon.drain();
}

TEST_F(ServeDaemonTest, DrainFinishesInFlightWorkBeforeStopping) {
  DaemonOptions options = base_options("drain");
  std::atomic<int> started{0};
  options.eval = [&](const std::string& backend,
                     const model::ScenarioSpec& spec) {
    started.fetch_add(1);
    std::this_thread::sleep_for(300ms);
    return default_eval(backend, spec);
  };
  Daemon daemon(options);
  daemon.start();

  EvalReply reply;
  std::thread inflight([&] {
    Client client = Client::connect(daemon.endpoint());
    reply = client.evaluate("fluid-equilibrium", quick_spec());
  });
  while (started.load() == 0) std::this_thread::sleep_for(1ms);

  daemon.drain();  // must wait for the in-flight evaluation
  inflight.join();
  ASSERT_TRUE(reply.ok) << "drain lost an accepted request's response: "
                        << reply.message;
  EXPECT_TRUE(daemon.draining());
  EXPECT_FALSE(fs::exists(dir_ + "/d.sock"))
      << "drain must unlink the unix socket";
}

TEST_F(ServeDaemonTest, RequestsDuringDrainGetTypedDrainingError) {
  DaemonOptions options = base_options("draining");
  Daemon daemon(options);
  daemon.start();
  Client client = Client::connect(daemon.endpoint());
  client.ping();  // handshaken before the drain begins
  std::thread drainer([&] { daemon.drain(); });
  // The connection stays readable for the daemon until drain's read-side
  // shutdown; a request racing the drain gets `draining`, never silence.
  for (;;) {
    EvalReply reply;
    try {
      reply = client.evaluate("fluid-equilibrium", quick_spec());
    } catch (const Error&) {
      break;  // drain closed the connection between frames — also fine
    }
    if (!reply.ok) {
      EXPECT_EQ(reply.code, ErrorCode::kDraining);
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  drainer.join();
}

TEST_F(ServeDaemonTest, CrashingRequestIsContainedByIsolation) {
  if (!robust::isolation_supported())
    GTEST_SKIP() << "fork isolation unavailable";
  DaemonOptions options = base_options("crash");
  options.robust.isolate = true;
  options.eval = [](const std::string& backend,
                    const model::ScenarioSpec& spec) {
    if (spec.seed == 666) std::abort();  // a poisoned request
    return default_eval(backend, spec);
  };
  Daemon daemon(options);
  daemon.start();
  Client client = Client::connect(daemon.endpoint());

  const EvalReply poisoned =
      client.evaluate("fluid-equilibrium", quick_spec(666));
  EXPECT_FALSE(poisoned.ok);
  EXPECT_EQ(poisoned.code, ErrorCode::kFailed);
  EXPECT_NE(poisoned.message.find("crash"), std::string::npos)
      << poisoned.message;

  // The daemon survived: the same connection keeps serving.
  const EvalReply healthy =
      client.evaluate("fluid-equilibrium", quick_spec(7));
  EXPECT_TRUE(healthy.ok) << healthy.message;
  daemon.drain();
}

TEST_F(ServeDaemonTest, HandshakeRejectsVersionSkew) {
  Daemon daemon(base_options("handshake"));
  daemon.start();

  Socket raw = Socket::connect_to(daemon.endpoint());
  raw.write_frame("hello 999 " + handshake_salt() + "\n");
  const auto frame = raw.read_frame();
  ASSERT_TRUE(frame.has_value());
  const Response response = parse_response(*frame);
  EXPECT_EQ(response.kind, ResponseKind::kError);
  EXPECT_EQ(response.code, ErrorCode::kVersionMismatch);
  // The daemon hangs up after a failed handshake.
  EXPECT_EQ(raw.read_frame(), std::nullopt);
  daemon.drain();
}

TEST_F(ServeDaemonTest, FirstFrameMustBeHello) {
  Daemon daemon(base_options("nohello"));
  daemon.start();
  Socket raw = Socket::connect_to(daemon.endpoint());
  raw.write_frame(encode_ping());
  const auto frame = raw.read_frame();
  ASSERT_TRUE(frame.has_value());
  const Response response = parse_response(*frame);
  EXPECT_EQ(response.kind, ResponseKind::kError);
  EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  daemon.drain();
}

TEST_F(ServeDaemonTest, GarbagePayloadGetsTypedBadRequestThenHangup) {
  Daemon daemon(base_options("garbage"));
  daemon.start();
  Socket raw = Socket::connect_to(daemon.endpoint());
  raw.write_frame(encode_hello());
  ASSERT_TRUE(raw.read_frame().has_value());  // welcome
  raw.write_frame("%%% not a verb %%%\n");
  const auto frame = raw.read_frame();
  ASSERT_TRUE(frame.has_value());
  const Response response = parse_response(*frame);
  EXPECT_EQ(response.kind, ResponseKind::kError);
  EXPECT_EQ(response.code, ErrorCode::kBadRequest);
  EXPECT_EQ(raw.read_frame(), std::nullopt) << "grammar garbage must hang up";
  daemon.drain();
}

TEST_F(ServeDaemonTest, UnknownBackendIsATypedRefusal) {
  Daemon daemon(base_options("nobackend"));
  daemon.start();
  Client client = Client::connect(daemon.endpoint());
  const EvalReply reply = client.evaluate("no-such-backend", quick_spec());
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.code, ErrorCode::kUnsupported);
  daemon.drain();
}

TEST_F(ServeDaemonTest, SweepAnswersPerPointWithTypedErrors) {
  Daemon daemon(base_options("sweep"));
  daemon.start();
  Client client = Client::connect(daemon.endpoint());
  model::ScenarioSpec spec = quick_spec();
  // 2.5 is out of range for p: that point fails typed, siblings succeed.
  const std::vector<EvalReply> replies = client.sweep(
      "fluid-equilibrium", "p", {0.25, 0.75, 2.5}, spec);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(replies[0].ok) << replies[0].message;
  EXPECT_TRUE(replies[1].ok) << replies[1].message;
  EXPECT_FALSE(replies[2].ok);
  EXPECT_EQ(replies[2].code, ErrorCode::kBadRequest);

  // An unknown axis refuses the whole request, uniformly.
  const std::vector<EvalReply> unknown =
      client.sweep("fluid-equilibrium", "frequency", {1.0}, spec);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_FALSE(unknown[0].ok);
  EXPECT_EQ(unknown[0].code, ErrorCode::kBadRequest);
  daemon.drain();
}

TEST_F(ServeDaemonTest, StatsExposeTheServeMetrics) {
  Daemon daemon(base_options("stats"));
  daemon.start();
  Client client = Client::connect(daemon.endpoint());
  ASSERT_TRUE(client.evaluate("fluid-equilibrium", quick_spec()).ok);
  const std::string json = client.stats_json();
  for (const char* needle :
       {"serve.requests", "serve.cache_hit", "serve.cache_miss",
        "serve.coalesced", "serve.evaluations", "serve.qps", "serve.p99",
        "serve.latency_seconds"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  daemon.drain();
}

TEST_F(ServeDaemonTest, DrainIsIdempotentAndTheDestructorIsSafe) {
  Daemon daemon(base_options("idempotent"));
  daemon.start();
  daemon.drain();
  daemon.drain();  // second drain must return immediately
  // Destructor drains a drained daemon: must not hang or throw.
}

}  // namespace
}  // namespace btmf::serve
