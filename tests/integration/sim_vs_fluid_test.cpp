// Cross-validation of the two independent implementations of the paper's
// models: the agent-level discrete-event simulator must reproduce the
// fluid-model steady states within Monte-Carlo tolerance for all four
// schemes. This is the strongest correctness evidence in the repository —
// the fluid code knows nothing about the simulator and vice versa.
#include <gtest/gtest.h>

#include <string>

#include "btmf/core/evaluate.h"
#include "btmf/sim/simulator.h"

namespace btmf {
namespace {

core::ScenarioConfig scenario(double p, unsigned k = 5) {
  core::ScenarioConfig sc;
  sc.num_files = k;
  sc.correlation = p;
  sc.visit_rate = 1.0;
  return sc;
}

sim::SimConfig sim_config(const core::ScenarioConfig& sc,
                          fluid::SchemeKind scheme, double rho = 0.0) {
  sim::SimConfig c;
  c.scheme = scheme;
  c.num_files = sc.num_files;
  c.correlation = sc.correlation;
  c.visit_rate = sc.visit_rate;
  c.fluid = sc.fluid;
  c.rho = rho;
  c.horizon = 4000.0;
  c.warmup = 1000.0;
  c.seed = 1234;
  return c;
}

// Every scheme must track its fluid steady state across the correlation
// range, not just at a hand-picked p. CMFSD only exists for p > 0 (no
// peers otherwise), so the sweep starts at 0.1.
struct SweepCase {
  fluid::SchemeKind scheme;
  double p;
};

class SimVsFluidSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SimVsFluidSweep, OnlineTimePerFileMatchesFluid) {
  const auto [scheme, p] = GetParam();
  const core::ScenarioConfig sc = scenario(p);
  core::EvaluateOptions options;
  options.rho = 0.0;  // CMFSD: generous peers; ignored by the others
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, scheme, options);
  const sim::SimResult sim_result =
      sim::run_simulation(sim_config(sc, scheme, /*rho=*/0.0));
  EXPECT_NEAR(sim_result.avg_online_per_file,
              fluid_report.avg_online_per_file,
              0.10 * fluid_report.avg_online_per_file);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAcrossCorrelation, SimVsFluidSweep,
    ::testing::Values(
        SweepCase{fluid::SchemeKind::kMtcd, 0.1},
        SweepCase{fluid::SchemeKind::kMtcd, 0.5},
        SweepCase{fluid::SchemeKind::kMtcd, 1.0},
        SweepCase{fluid::SchemeKind::kMtsd, 0.1},
        SweepCase{fluid::SchemeKind::kMtsd, 0.5},
        SweepCase{fluid::SchemeKind::kMtsd, 1.0},
        SweepCase{fluid::SchemeKind::kMfcd, 0.1},
        SweepCase{fluid::SchemeKind::kMfcd, 0.5},
        SweepCase{fluid::SchemeKind::kMfcd, 1.0},
        SweepCase{fluid::SchemeKind::kCmfsd, 0.1},
        SweepCase{fluid::SchemeKind::kCmfsd, 0.5},
        SweepCase{fluid::SchemeKind::kCmfsd, 1.0}),
    [](const ::testing::TestParamInfo<SweepCase>& tpi) {
      const char* name = "Cmfsd";
      switch (tpi.param.scheme) {
        case fluid::SchemeKind::kMtcd: name = "Mtcd"; break;
        case fluid::SchemeKind::kMtsd: name = "Mtsd"; break;
        case fluid::SchemeKind::kMfcd: name = "Mfcd"; break;
        default: break;
      }
      return std::string(name) + "P" +
             std::to_string(static_cast<int>(tpi.param.p * 10));
    });

TEST(SimVsFluidTest, MtsdOnlineTimeMatches) {
  const core::ScenarioConfig sc = scenario(0.5);
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, fluid::SchemeKind::kMtsd);
  const sim::SimResult sim_result =
      sim::run_simulation(sim_config(sc, fluid::SchemeKind::kMtsd));
  EXPECT_NEAR(sim_result.avg_online_per_file,
              fluid_report.avg_online_per_file,
              0.05 * fluid_report.avg_online_per_file);
}

TEST(SimVsFluidTest, MtcdLittleLawMatchesPerClass) {
  const core::ScenarioConfig sc = scenario(1.0);
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, fluid::SchemeKind::kMtcd);
  const sim::SimResult sim_result =
      sim::run_simulation(sim_config(sc, fluid::SchemeKind::kMtcd));
  const unsigned k = sc.num_files;
  // At p = 1 only class K is populated.
  const double expected = fluid_report.per_class.online_per_file[k - 1];
  EXPECT_NEAR(sim_result.classes[k - 1].little_online_time, expected,
              0.08 * expected);
}

TEST(SimVsFluidTest, MfcdMatchesMtcdFluidEquivalence) {
  const core::ScenarioConfig sc = scenario(1.0);
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, fluid::SchemeKind::kMfcd);
  const sim::SimResult sim_result =
      sim::run_simulation(sim_config(sc, fluid::SchemeKind::kMfcd));
  const unsigned k = sc.num_files;
  const double expected = fluid_report.per_class.online_per_file[k - 1];
  EXPECT_NEAR(sim_result.classes[k - 1].little_online_time, expected,
              0.08 * expected);
}

TEST(SimVsFluidTest, CmfsdGenerousMatches) {
  const core::ScenarioConfig sc = scenario(0.9);
  core::EvaluateOptions options;
  options.rho = 0.0;
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, fluid::SchemeKind::kCmfsd, options);
  const sim::SimResult sim_result = sim::run_simulation(
      sim_config(sc, fluid::SchemeKind::kCmfsd, /*rho=*/0.0));
  EXPECT_NEAR(sim_result.avg_online_per_file,
              fluid_report.avg_online_per_file,
              0.07 * fluid_report.avg_online_per_file);
}

TEST(SimVsFluidTest, CmfsdSelfishMatches) {
  const core::ScenarioConfig sc = scenario(0.9);
  core::EvaluateOptions options;
  options.rho = 1.0;
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, fluid::SchemeKind::kCmfsd, options);
  const sim::SimResult sim_result = sim::run_simulation(
      sim_config(sc, fluid::SchemeKind::kCmfsd, /*rho=*/1.0));
  EXPECT_NEAR(sim_result.avg_online_per_file,
              fluid_report.avg_online_per_file,
              0.07 * fluid_report.avg_online_per_file);
}

TEST(SimVsFluidTest, CmfsdPerClassDownloadTimesMatch) {
  const core::ScenarioConfig sc = scenario(0.8);
  core::EvaluateOptions options;
  options.rho = 0.2;
  const core::SchemeReport fluid_report =
      core::evaluate_scheme(sc, fluid::SchemeKind::kCmfsd, options);
  sim::SimConfig c = sim_config(sc, fluid::SchemeKind::kCmfsd, 0.2);
  c.horizon = 5000.0;
  const sim::SimResult sim_result = sim::run_simulation(c);
  for (unsigned i = 2; i <= sc.num_files; ++i) {
    const auto& cls = sim_result.classes[i - 1];
    if (cls.completed_users < 150) continue;
    const double expected = fluid_report.per_class.download_per_file[i - 1];
    EXPECT_NEAR(cls.little_download_time, expected, 0.10 * expected)
        << "class " << i;
  }
}

TEST(SimVsFluidTest, SchemeOrderingPreservedAtHighCorrelation) {
  // The paper's bottom line, at the agent level: CMFSD(0) < MTSD <
  // MFCD ~ MTCD in average online time per file when p is high.
  const core::ScenarioConfig sc = scenario(0.9);
  const double cmfsd =
      sim::run_simulation(
          sim_config(sc, fluid::SchemeKind::kCmfsd, /*rho=*/0.0))
          .avg_online_per_file;
  const double mtsd =
      sim::run_simulation(sim_config(sc, fluid::SchemeKind::kMtsd))
          .avg_online_per_file;
  const double mfcd =
      sim::run_simulation(sim_config(sc, fluid::SchemeKind::kMfcd))
          .avg_online_per_file;
  EXPECT_LT(cmfsd, mtsd);
  EXPECT_LT(mtsd, mfcd);
}

}  // namespace
}  // namespace btmf
