// Cross-validation of the independent implementations of the paper's
// models, driven entirely through the btmf::model backend seam: every
// (scheme, correlation, backend) cell of the matrix must either match the
// fluid-equilibrium reference within the backend's declared tolerance or
// be *declared* unsupported via Backend::capabilities() — a silent skip
// is a test failure. This is the strongest correctness evidence in the
// repository: the fluid code knows nothing about the simulator and vice
// versa, yet both answer the same ScenarioSpec.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "btmf/model/backend.h"

namespace btmf {
namespace {

model::ScenarioSpec spec_for(fluid::SchemeKind scheme, double p,
                             double rho = 0.0, unsigned k = 5) {
  model::ScenarioSpec spec;
  spec.num_files = k;
  spec.correlation = p;
  spec.visit_rate = 1.0;
  spec.scheme = scheme;
  spec.rho = rho;
  spec.horizon = 4000.0;
  spec.warmup = 1000.0;
  spec.seed = 1234;
  return spec;
}

const model::Backend& reference() {
  return model::require_backend("fluid-equilibrium");
}

// Every candidate backend must track the reference across the scheme x
// correlation grid — including p = 0, where the candidate is required to
// *declare* the cell unsupported (its Little's-law / sampling readout
// needs arrivals) rather than crash or silently skip.
struct MatrixCase {
  const char* backend;
  fluid::SchemeKind scheme;
  double p;
  double tolerance;  ///< relative, on avg online time per file
};

class SimVsFluidMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SimVsFluidMatrix, MatchesReferenceOrDeclaresUnsupported) {
  const MatrixCase& c = GetParam();
  const model::ScenarioSpec spec = spec_for(c.scheme, c.p);
  const model::Backend& candidate = model::require_backend(c.backend);

  const model::Outcome expected = reference().evaluate(spec);
  const model::Outcome got = candidate.evaluate(spec);

  if (!candidate.capabilities().zero_correlation && c.p == 0.0) {
    // The declared skip: a typed refusal with a reason, never a crash.
    ASSERT_EQ(got.status, model::OutcomeStatus::kUnsupported);
    EXPECT_FALSE(got.error.empty());
    return;
  }
  ASSERT_TRUE(expected.ok()) << expected.error;
  ASSERT_TRUE(got.ok()) << got.error;
  EXPECT_NEAR(got.avg_online_per_file, expected.avg_online_per_file,
              c.tolerance * expected.avg_online_per_file);
}

std::string matrix_case_name(
    const ::testing::TestParamInfo<MatrixCase>& tpi) {
  std::string name = tpi.param.backend == std::string("fluid-transient")
                         ? "Transient"
                         : "Kernel";
  switch (tpi.param.scheme) {
    case fluid::SchemeKind::kMtcd: name += "Mtcd"; break;
    case fluid::SchemeKind::kMtsd: name += "Mtsd"; break;
    case fluid::SchemeKind::kMfcd: name += "Mfcd"; break;
    case fluid::SchemeKind::kCmfsd: name += "Cmfsd"; break;
  }
  return name + "P" + std::to_string(static_cast<int>(tpi.param.p * 10));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAcrossCorrelation, SimVsFluidMatrix,
    ::testing::Values(
        // kernel-sim: Monte-Carlo tolerance. CMFSD only exists for p > 0
        // (no peers otherwise), so its sweep starts at 0.1; the p = 0
        // cells of the other schemes assert the declared-unsupported path.
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtcd, 0.0, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtcd, 0.1, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtcd, 0.5, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtcd, 1.0, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtsd, 0.0, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtsd, 0.1, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtsd, 0.5, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMtsd, 1.0, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMfcd, 0.0, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMfcd, 0.1, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMfcd, 0.5, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kMfcd, 1.0, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kCmfsd, 0.1, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kCmfsd, 0.5, 0.10},
        MatrixCase{"kernel-sim", fluid::SchemeKind::kCmfsd, 1.0, 0.10},
        // fluid-transient: same ODEs read out at the horizon — analytic
        // agreement, so the tolerance is much tighter.
        MatrixCase{"fluid-transient", fluid::SchemeKind::kMtcd, 0.0, 0.02},
        MatrixCase{"fluid-transient", fluid::SchemeKind::kMtcd, 0.5, 0.02},
        MatrixCase{"fluid-transient", fluid::SchemeKind::kMtsd, 0.5, 0.02},
        MatrixCase{"fluid-transient", fluid::SchemeKind::kMfcd, 0.5, 0.02},
        MatrixCase{"fluid-transient", fluid::SchemeKind::kCmfsd, 0.5, 0.02}),
    matrix_case_name);

// Every cell of the full scheme x backend grid must be accounted for:
// either the backend claims support (and the matrix above exercises it)
// or unsupported_reason() explains why. No silent third state.
TEST(SimVsFluidTest, EveryMatrixCellIsSupportedOrDeclared) {
  for (const model::Backend* backend : model::backend_registry()) {
    for (const fluid::SchemeKind scheme :
         {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
          fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
      for (const double p : {0.0, 0.5, 1.0}) {
        const model::ScenarioSpec spec = spec_for(scheme, p);
        const auto reason = backend->unsupported_reason(spec);
        const model::Outcome outcome = backend->evaluate(spec);
        if (reason) {
          EXPECT_EQ(outcome.status, model::OutcomeStatus::kUnsupported)
              << backend->name() << " " << fluid::to_string(scheme)
              << " p=" << p;
          EXPECT_EQ(outcome.error, *reason);
        } else {
          EXPECT_TRUE(outcome.ok())
              << backend->name() << " " << fluid::to_string(scheme)
              << " p=" << p << ": " << outcome.error;
        }
      }
    }
  }
}

TEST(SimVsFluidTest, MtsdOnlineTimeMatches) {
  const model::ScenarioSpec spec = spec_for(fluid::SchemeKind::kMtsd, 0.5);
  const model::Outcome expected = reference().evaluate_or_throw(spec);
  const model::Outcome got =
      model::require_backend("kernel-sim").evaluate_or_throw(spec);
  EXPECT_NEAR(got.avg_online_per_file, expected.avg_online_per_file,
              0.05 * expected.avg_online_per_file);
}

TEST(SimVsFluidTest, MtcdLittleLawMatchesPerClass) {
  const model::ScenarioSpec spec = spec_for(fluid::SchemeKind::kMtcd, 1.0);
  const model::Outcome expected = reference().evaluate_or_throw(spec);
  const model::Outcome got =
      model::require_backend("kernel-sim").evaluate_or_throw(spec);
  ASSERT_TRUE(got.sim.has_value());
  const unsigned k = spec.num_files;
  // At p = 1 only class K is populated.
  const double fluid_value = expected.per_class.online_per_file[k - 1];
  EXPECT_NEAR(got.sim->classes[k - 1].little_online_time, fluid_value,
              0.08 * fluid_value);
}

TEST(SimVsFluidTest, MfcdMatchesMtcdFluidEquivalence) {
  const model::ScenarioSpec spec = spec_for(fluid::SchemeKind::kMfcd, 1.0);
  const model::Outcome expected = reference().evaluate_or_throw(spec);
  const model::Outcome got =
      model::require_backend("kernel-sim").evaluate_or_throw(spec);
  ASSERT_TRUE(got.sim.has_value());
  const unsigned k = spec.num_files;
  const double fluid_value = expected.per_class.online_per_file[k - 1];
  EXPECT_NEAR(got.sim->classes[k - 1].little_online_time, fluid_value,
              0.08 * fluid_value);
}

TEST(SimVsFluidTest, CmfsdGenerousMatches) {
  const model::ScenarioSpec spec =
      spec_for(fluid::SchemeKind::kCmfsd, 0.9, /*rho=*/0.0);
  const model::Outcome expected = reference().evaluate_or_throw(spec);
  const model::Outcome got =
      model::require_backend("kernel-sim").evaluate_or_throw(spec);
  EXPECT_NEAR(got.avg_online_per_file, expected.avg_online_per_file,
              0.07 * expected.avg_online_per_file);
}

TEST(SimVsFluidTest, CmfsdSelfishMatches) {
  const model::ScenarioSpec spec =
      spec_for(fluid::SchemeKind::kCmfsd, 0.9, /*rho=*/1.0);
  const model::Outcome expected = reference().evaluate_or_throw(spec);
  const model::Outcome got =
      model::require_backend("kernel-sim").evaluate_or_throw(spec);
  EXPECT_NEAR(got.avg_online_per_file, expected.avg_online_per_file,
              0.07 * expected.avg_online_per_file);
}

TEST(SimVsFluidTest, CmfsdPerClassDownloadTimesMatch) {
  model::ScenarioSpec spec =
      spec_for(fluid::SchemeKind::kCmfsd, 0.8, /*rho=*/0.2);
  spec.horizon = 5000.0;
  const model::Outcome expected = reference().evaluate_or_throw(spec);
  const model::Outcome got =
      model::require_backend("kernel-sim").evaluate_or_throw(spec);
  ASSERT_TRUE(got.sim.has_value());
  for (unsigned i = 2; i <= spec.num_files; ++i) {
    const auto& cls = got.sim->classes[i - 1];
    if (cls.completed_users < 150) continue;
    const double fluid_value = expected.per_class.download_per_file[i - 1];
    EXPECT_NEAR(cls.little_download_time, fluid_value, 0.10 * fluid_value)
        << "class " << i;
  }
}

TEST(SimVsFluidTest, SchemeOrderingPreservedAtHighCorrelation) {
  // The paper's bottom line, at the agent level: CMFSD(0) < MTSD <
  // MFCD ~ MTCD in average online time per file when p is high.
  const model::Backend& kernel = model::require_backend("kernel-sim");
  const double cmfsd =
      kernel.evaluate_or_throw(spec_for(fluid::SchemeKind::kCmfsd, 0.9, 0.0))
          .avg_online_per_file;
  const double mtsd =
      kernel.evaluate_or_throw(spec_for(fluid::SchemeKind::kMtsd, 0.9))
          .avg_online_per_file;
  const double mfcd =
      kernel.evaluate_or_throw(spec_for(fluid::SchemeKind::kMfcd, 0.9))
          .avg_online_per_file;
  EXPECT_LT(cmfsd, mtsd);
  EXPECT_LT(mtsd, mfcd);
}

}  // namespace
}  // namespace btmf
